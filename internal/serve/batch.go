package serve

// This file is the micro-batching dispatcher: HTTP handlers enqueue
// individual samples onto a channel; a batcher goroutine coalesces up to
// MaxBatch samples or MaxWait of wall clock (whichever comes first) into
// one inference batch; a worker pool assembles each batch into a matrix
// and runs the model's GEMM-lowered batch predict.  Samples from different
// HTTP requests share batches, which is what amortizes per-request
// dispatch overhead under concurrent load.

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"srda/internal/classify"
	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/sparse"
)

// pending tracks one HTTP request's samples across however many inference
// batches they land in.  done closes when every sample is resolved (or
// failed); results are safe to read only after done.
type pending struct {
	classes    []int
	embeddings [][]float64 // nil unless the request asked for embeddings
	model      string      // resolved registry name answering the request
	modelSeq   atomic.Uint64
	remaining  atomic.Int32
	mu         sync.Mutex
	err        error
	done       chan struct{}
	// span is the request's root span; runBatch opens a "batch" child per
	// request so every trace shows the shared inference interval.  Nil when
	// tracing is off.
	span *obs.ReqSpan
}

func newPending(n int, embed bool) *pending {
	p := &pending{classes: make([]int, n), done: make(chan struct{})}
	if embed {
		p.embeddings = make([][]float64, n)
	}
	p.remaining.Store(int32(n))
	return p
}

func (p *pending) fail(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

func (p *pending) failure() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// settle resolves k samples; the last one closes done.
func (p *pending) settle(k int) {
	if k > 0 && p.remaining.Add(-int32(k)) == 0 {
		close(p.done)
	}
}

// item is one sample in flight: either a dense vector or a sparse
// (cols, vals) pair, plus the slot it resolves into.  model is the
// resolved registry name; the dispatcher groups a mixed-tenant batch by
// it, one GEMM per model present.
type item struct {
	p     *pending
	idx   int
	model string
	dense []float64
	cols  []int
	vals  []float64
	width int // len(dense), or max sparse index + 1
}

func (it *item) sparse() bool { return it.dense == nil }

// batcher coalesces queued items into batches for the worker pool.  It
// owns the flush timer: a batch is dispatched when it reaches MaxBatch
// samples or when MaxWait has elapsed since its first sample arrived.
func (s *Server) batcher() {
	defer close(s.workCh)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []*item
	flush := func() {
		if len(batch) > 0 {
			s.workCh <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			select {
			case it := <-s.queue:
				batch = append(batch, it)
				if len(batch) >= s.opts.MaxBatch {
					flush()
					continue
				}
				timer.Reset(s.opts.MaxWait)
			case <-s.stop:
				s.drain(flush, &batch)
				return
			}
			continue
		}
		select {
		case it := <-s.queue:
			batch = append(batch, it)
			if len(batch) >= s.opts.MaxBatch {
				stopTimer(timer)
				flush()
			}
		case <-timer.C:
			flush()
		case <-s.stop:
			stopTimer(timer)
			s.drain(flush, &batch)
			return
		}
	}
}

// drain empties whatever is still queued at shutdown and flushes it, so
// samples enqueued before the stop signal are answered rather than leaked.
func (s *Server) drain(flush func(), batch *[]*item) {
	for {
		select {
		case it := <-s.queue:
			*batch = append(*batch, it)
			if len(*batch) >= s.opts.MaxBatch {
				flush()
			}
		default:
			flush()
			return
		}
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for batch := range s.workCh {
		s.runBatch(batch)
	}
}

// runBatch splits a coalesced batch by registry model (samples from
// different tenants share the dispatcher but never a GEMM) and runs one
// inference sub-batch per model in first-appearance order.
func (s *Server) runBatch(batch []*item) {
	// Single-tenant batches — the overwhelmingly common case — skip the
	// grouping allocation entirely.
	uniform := true
	for _, it := range batch[1:] {
		if it.model != batch[0].model {
			uniform = false
			break
		}
	}
	if uniform {
		s.runModelBatch(batch[0].model, batch)
		return
	}
	var order []string
	groups := make(map[string][]*item)
	for _, it := range batch {
		if _, ok := groups[it.model]; !ok {
			order = append(order, it.model)
		}
		groups[it.model] = append(groups[it.model], it)
	}
	for _, name := range order {
		s.runModelBatch(name, groups[name])
	}
}

// runModelBatch assembles one model's sub-batch into a matrix, runs the
// batched projection and nearest-centroid assignment on the snapshot
// loaded once for the whole sub-batch (publishes and rollbacks therefore
// never tear a batch), and writes the per-sample results back.
func (s *Server) runModelBatch(name string, batch []*item) {
	snap, ok := s.reg.Get(name)
	if !ok {
		// Evicted or deleted between enqueue and dispatch.
		err := &UnknownModelError{Name: name}
		for _, it := range batch {
			it.p.fail(err)
			it.p.settle(1)
		}
		return
	}
	m := snap.Model
	n := m.W.Rows

	// A reload may have changed the feature count since enqueue-time
	// validation; fail the now-incompatible samples instead of panicking.
	valid := batch[:0]
	for _, it := range batch {
		ok := it.width <= n
		if !it.sparse() {
			ok = it.width == n
		}
		if !ok {
			it.p.fail(ErrModelShape)
			it.p.settle(1)
			continue
		}
		valid = append(valid, it)
	}
	if len(valid) == 0 {
		return
	}
	s.metrics.batches.Inc()
	s.metrics.samples.Add(int64(len(valid)))
	s.metrics.batchSize.Observe(float64(len(valid)))

	// Fan-in tracing: one "batch" child per distinct request in the batch,
	// so each request's trace shows the shared inference interval.  The
	// kernel spans below (core.gemm / core.project_csr / pool.do /
	// classify) attach to the first traced request's batch span — one
	// execution, one set of kernel spans, owned by one trace.
	batchSpans := make(map[*pending]*obs.ReqSpan, 4)
	var owner *obs.ReqSpan
	for _, it := range valid {
		if _, ok := batchSpans[it.p]; !ok {
			sp := it.p.span.StartChild("batch")
			batchSpans[it.p] = sp
			if owner == nil && sp != nil {
				owner = sp
			}
		}
	}
	ctx := obs.ContextWithSpan(context.Background(), owner)

	allSparse := true
	for _, it := range valid {
		if !it.sparse() {
			allSparse = false
			break
		}
	}
	var emb *mat.Dense
	if allSparse {
		b := sparse.NewBuilder(len(valid), n)
		for r, it := range valid {
			for t, j := range it.cols {
				b.Add(r, j, it.vals[t])
			}
		}
		emb = m.ProjectBatchCSRCtx(ctx, b.Build(), nil)
	} else {
		x := mat.NewDense(len(valid), n)
		for r, it := range valid {
			row := x.RowView(r)
			if it.sparse() {
				for t, j := range it.cols {
					row[j] = it.vals[t]
				}
			} else {
				copy(row, it.dense)
			}
		}
		emb = m.ProjectBatchCtx(ctx, x, nil)
	}
	nc := classify.NearestCentroid{Centroids: m.Centroids}
	_, csp := obs.StartSpan(ctx, "classify")
	classes := nc.PredictBatch(emb)
	csp.End()
	for r, it := range valid {
		it.p.classes[it.idx] = classes[r]
		if it.p.embeddings != nil {
			it.p.embeddings[it.idx] = append([]float64(nil), emb.RowView(r)...)
		}
		it.p.modelSeq.Store(snap.Version)
		it.p.settle(1)
	}
	//srdalint:ignore maprange each End stamps its own request's span; cross-request event order is scheduler-dependent regardless
	for _, sp := range batchSpans {
		sp.End()
	}
}

// enqueue submits one request's samples to the dispatcher.  It never
// blocks: when the queue is full the remaining samples are rejected and
// the pending is failed with errQueueFull (already-queued samples still
// resolve, so done always closes).
func (s *Server) enqueue(p *pending, items []*item) {
	for i, it := range items {
		select {
		case s.queue <- it:
		default:
			s.metrics.queueRejects.Add(int64(len(items) - i))
			s.logger.Sample("queue_full", time.Second).Warn("prediction queue full",
				"rejected", len(items)-i, "queue_depth", s.opts.QueueDepth)
			s.opts.Flight.NoteQueueFull(p.span.TraceID())
			p.fail(ErrQueueFull)
			p.settle(len(items) - i)
			return
		}
	}
}
