package serve

import (
	"fmt"
	"os"
	"sync"
	"time"

	"srda/internal/core"
)

// ReloadFromFile loads a model file and swaps it live.  Combined with the
// atomic temp-file + rename in Model.SaveFile, a reader can never observe
// a half-written model.  In-flight batches finish on the old model.
func (s *Server) ReloadFromFile(path string) (uint64, error) {
	m, err := core.LoadFile(path)
	if err != nil {
		s.metrics.reloadErrors.Inc()
		return 0, fmt.Errorf("serve: reloading %s: %w", path, err)
	}
	seq, err := s.Swap(m)
	if err != nil {
		s.metrics.reloadErrors.Inc()
		return 0, fmt.Errorf("serve: reloading %s: %w", path, err)
	}
	return seq, nil
}

// WatchFile polls path every interval and hot-reloads the model when its
// mtime or size changes.  A failed reload keeps the current model and is
// retried on later changes.  The watcher stops when the server closes or
// when the returned stop function is called.  Outcomes are logged through
// the server's structured logger (Options.Logger; silent when nil).
func (s *Server) WatchFile(path string, interval time.Duration) (stopWatch func()) {
	if interval <= 0 {
		interval = time.Second
	}
	stopCh := make(chan struct{})
	var last os.FileInfo
	if fi, err := os.Stat(path); err == nil {
		last = fi
	}
	s.watchWG.Add(1)
	go func() {
		defer s.watchWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				fi, err := os.Stat(path)
				if err != nil {
					continue // transient (e.g. mid-rename); keep serving
				}
				if last != nil && fi.ModTime().Equal(last.ModTime()) && fi.Size() == last.Size() {
					continue
				}
				seq, err := s.ReloadFromFile(path)
				if err != nil {
					s.logger.Warn("hot reload failed", "path", path, "err", err.Error())
					continue
				}
				last = fi
				s.logger.Info("model reloaded", "path", path, "model_seq", seq)
			case <-stopCh:
				return
			case <-s.stop:
				return
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(stopCh) }) }
}
