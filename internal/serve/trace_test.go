package serve

import (
	"bytes"
	"context"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"srda/internal/obs"
)

// TestConcurrentRequestTracing fires 120 concurrent predict requests
// (run under -race in make check) and verifies the span trees: every
// request's trace carries request → parse/queue/batch with one shared
// trace id, those children parent onto their request roots, and the
// kernel spans land under some request's batch span.
func TestConcurrentRequestTracing(t *testing.T) {
	model, probes := trainBlobs(t, 24, 3, 11)
	s, _, client := newTestServer(t, model, Options{Workers: 2, MaxBatch: 16})

	const requests = 120
	var wg sync.WaitGroup
	for g := 0; g < requests; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			smp := Sample{Dense: append([]float64(nil), probes.RowView(g%3)...)}
			if _, err := client.Predict(ctx, smp); err != nil {
				t.Errorf("request %d: %v", g, err)
			}
		}(g)
	}
	wg.Wait()

	spans := s.Tracer().Snapshot()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	type key struct {
		trace obs.TraceID
		id    obs.SpanID
	}
	byID := make(map[key]obs.SpanRecord)
	byTrace := make(map[obs.TraceID][]obs.SpanRecord)
	for _, sp := range spans {
		byID[key{sp.Trace, sp.ID}] = sp
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	if len(byTrace) != requests {
		t.Fatalf("got %d traces, want %d", len(byTrace), requests)
	}
	kernelOwners := 0
	for id, tspans := range byTrace {
		var root obs.SpanRecord
		names := map[string]int{}
		for _, sp := range tspans {
			names[sp.Name]++
			if sp.Name == "request" {
				root = sp
			}
		}
		if names["request"] != 1 || names["parse"] != 1 || names["queue"] != 1 || names["batch"] != 1 {
			t.Fatalf("trace %d span multiset wrong: %v", id, names)
		}
		if root.Parent != 0 {
			t.Errorf("trace %d: request span has parent %d", id, root.Parent)
		}
		hasKernel := false
		for _, sp := range tspans {
			switch sp.Name {
			case "request":
			case "parse", "queue", "batch":
				if sp.Parent != root.ID {
					t.Errorf("trace %d: %s parented on %d, want request %d", id, sp.Name, sp.Parent, root.ID)
				}
			case "core.gemm", "core.project_csr", "classify", "pool.do":
				hasKernel = true
				parent, ok := byID[key{sp.Trace, sp.Parent}]
				if !ok {
					t.Errorf("trace %d: kernel span %s has unknown parent %d", id, sp.Name, sp.Parent)
				} else if parent.Name != "batch" && parent.Name != "core.project_csr" {
					t.Errorf("trace %d: kernel span %s parented on %q", id, sp.Name, parent.Name)
				}
			default:
				t.Errorf("trace %d: unexpected span %q", id, sp.Name)
			}
		}
		if hasKernel {
			kernelOwners++
		}
	}
	// Each batch execution attributes its kernel spans to exactly one
	// owning trace; with 120 requests there is at least one batch.
	if kernelOwners == 0 {
		t.Fatal("no trace owns kernel spans")
	}

	// The export must be a valid, non-empty Chrome trace.
	var buf bytes.Buffer
	if err := s.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ph":"X"`) || !strings.Contains(out, `"name":"request"`) {
		t.Fatalf("chrome export looks wrong: %.200s", out)
	}
}

// TestWatchFileLogsThroughServerLogger verifies the reload watcher logs
// through Options.Logger, including trace-free structured context.
func TestWatchFileLogsThroughServerLogger(t *testing.T) {
	model, _ := trainBlobs(t, 16, 3, 5)
	var mu sync.Mutex
	var sb strings.Builder
	lockedWrite := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sb.Write(p)
	})
	logger := obs.NewLogger(lockedWrite, slog.LevelInfo)
	s, _, _ := newTestServer(t, model, Options{Logger: logger})

	path := t.TempDir() + "/model.bin"
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	stop := s.WatchFile(path, time.Millisecond)
	defer stop()

	// Touch the file with different content so mtime/size change.
	model.B[0] += 1e-9
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := model.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
		mu.Lock()
		logged := strings.Contains(sb.String(), "model reloaded")
		mu.Unlock()
		if logged {
			break
		}
		if time.Now().After(deadline) {
			mu.Lock()
			t.Fatalf("no reload log line; log so far:\n%s", sb.String())
			mu.Unlock()
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(sb.String(), "model_seq=") {
		t.Fatalf("reload log missing model_seq attr:\n%s", sb.String())
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
