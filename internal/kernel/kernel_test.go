package kernel

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/blas"
	"srda/internal/mat"
)

func randLabels(rng *rand.Rand, m, c int) []int {
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % c
	}
	rng.Shuffle(m, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

func blobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := randLabels(rng, m, c)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
	}
	return x, labels
}

func TestKernelEvaluations(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, -1}
	if got := (Linear{}).Eval(x, y); got != 1 {
		t.Fatalf("linear: %v", got)
	}
	if got := (Linear{Offset: 2}).Eval(x, y); got != 3 {
		t.Fatalf("linear offset: %v", got)
	}
	if got := (Polynomial{Degree: 2, Coef: 1}).Eval(x, y); got != 4 {
		t.Fatalf("poly: %v", got)
	}
	// RBF: exp(-γ·13); at γ=0 → 1
	want := math.Exp(-0.5 * 13)
	if got := (RBF{Gamma: 0.5}).Eval(x, y); math.Abs(got-want) > 1e-15 {
		t.Fatalf("rbf: %v want %v", got, want)
	}
	if got := (RBF{Gamma: 1}).Eval(x, x); got != 1 {
		t.Fatalf("rbf self-similarity %v", got)
	}
}

func TestKSRDALinearSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xTrain, yTrain := blobs(rng, 120, 8, 3, 8)
	xTest, yTest := blobs(rng, 60, 8, 3, 8)
	model, err := Fit(xTrain, yTrain, 3, Options{Alpha: 1, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 2 {
		t.Fatalf("Dim=%d", model.Dim())
	}
	errRate := centroidError(model.Transform(xTrain), yTrain, model.Transform(xTest), yTest, 3)
	if errRate > 0.05 {
		t.Fatalf("linear-kernel error %.3f", errRate)
	}
}

func TestKSRDARBFSolvesConcentricRings(t *testing.T) {
	// A radially-separable problem no linear method can solve: class 0 is
	// a tight ball, class 1 a surrounding ring.
	rng := rand.New(rand.NewSource(2))
	make2 := func(m int) (*mat.Dense, []int) {
		x := mat.NewDense(m, 2)
		labels := make([]int, m)
		for i := 0; i < m; i++ {
			labels[i] = i % 2
			r := 0.5
			if labels[i] == 1 {
				r = 3
			}
			r += 0.2 * rng.NormFloat64()
			theta := 2 * math.Pi * rng.Float64()
			x.Set(i, 0, r*math.Cos(theta))
			x.Set(i, 1, r*math.Sin(theta))
		}
		return x, labels
	}
	xTrain, yTrain := make2(160)
	xTest, yTest := make2(100)

	rbf, err := Fit(xTrain, yTrain, 2, Options{Alpha: 0.1, Kernel: RBF{Gamma: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	rbfErr := centroidError(rbf.Transform(xTrain), yTrain, rbf.Transform(xTest), yTest, 2)
	if rbfErr > 0.05 {
		t.Fatalf("RBF KSRDA error %.3f on rings", rbfErr)
	}

	lin, err := Fit(xTrain, yTrain, 2, Options{Alpha: 0.1, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	linErr := centroidError(lin.Transform(xTrain), yTrain, lin.Transform(xTest), yTest, 2)
	if linErr < 0.25 {
		t.Fatalf("linear kernel should fail on rings, got %.3f", linErr)
	}
}

func TestKSRDADefaultKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(rng, 40, 6, 2, 6)
	model, err := Fit(x, y, 2, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.Kernel.Name() != "rbf" {
		t.Fatalf("default kernel %q", model.Kernel.Name())
	}
}

func TestKSRDAValidation(t *testing.T) {
	x := mat.NewDense(4, 2)
	if _, err := Fit(x, []int{0, 1}, 2, Options{Alpha: 1}); err == nil {
		t.Fatal("label mismatch accepted")
	}
	if _, err := Fit(x, []int{0, 1, 0, 1}, 2, Options{Alpha: 0}); err == nil {
		t.Fatal("zero alpha accepted")
	}
}

func TestKSRDAExpansionSolvesRegularizedSystem(t *testing.T) {
	// The defining property: (K + αI)·β = ȳ.
	rng := rand.New(rand.NewSource(4))
	x, labels := blobs(rng, 30, 5, 3, 4)
	alpha := 0.7
	model, err := Fit(x, labels, 3, Options{Alpha: alpha, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	// rebuild the centered K̄ = HKH the fit uses
	m := x.Rows
	k := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k.Set(i, j, blas.Dot(x.RowView(i), x.RowView(j)))
		}
	}
	rowMean := make([]float64, m)
	var grand float64
	for i := 0; i < m; i++ {
		var s float64
		for j := 0; j < m; j++ {
			s += k.At(i, j)
		}
		rowMean[i] = s / float64(m)
		grand += s
	}
	grand /= float64(m) * float64(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			k.Set(i, j, k.At(i, j)+grand-rowMean[i]-rowMean[j])
		}
	}
	// (K̄+αI)β must reproduce orthonormal, zero-sum responses
	lhs := mat.Mul(k, model.Beta)
	lhs.AddScaled(alpha, model.Beta)
	g := mat.MulTA(lhs, lhs)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-6 {
				t.Fatalf("(K+αI)β not orthonormal responses at (%d,%d): %v", i, j, g.At(i, j))
			}
		}
	}
	for j := 0; j < lhs.Cols; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += lhs.At(i, j)
		}
		if math.Abs(s) > 1e-7 {
			t.Fatalf("response %d not zero-sum: %v", j, s)
		}
	}
}

func centroidError(embTrain *mat.Dense, yTrain []int, embTest *mat.Dense, yTest []int, c int) float64 {
	d := embTrain.Cols
	cent := mat.NewDense(c, d)
	counts := make([]float64, c)
	for i, lab := range yTrain {
		counts[lab]++
		blas.Axpy(1, embTrain.RowView(i), cent.RowView(lab))
	}
	for k := 0; k < c; k++ {
		blas.Scal(1/counts[k], cent.RowView(k))
	}
	wrong := 0
	for i := 0; i < embTest.Rows; i++ {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < c; k++ {
			var dist float64
			row := embTest.RowView(i)
			cr := cent.RowView(k)
			for j := range row {
				diff := row[j] - cr[j]
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = k, dist
			}
		}
		if best != yTest[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(embTest.Rows)
}

func TestAutoGammaScalesWithData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, _ := blobs(rng, 50, 6, 2, 3)
	g1 := autoGamma(x)
	if g1 <= 0 {
		t.Fatalf("gamma %v", g1)
	}
	// scaling the data by 10 must shrink gamma by ~100
	scaled := x.Clone()
	scaled.Scale(10)
	g2 := autoGamma(scaled)
	ratio := g1 / g2
	if ratio < 50 || ratio > 200 {
		t.Fatalf("gamma scaling ratio %v, want ≈100", ratio)
	}
	// degenerate inputs fall back to 1
	if autoGamma(mat.NewDense(1, 3)) != 1 {
		t.Fatal("single sample should fall back")
	}
	if autoGamma(mat.NewDense(5, 3)) != 1 {
		t.Fatal("all-zero data should fall back")
	}
}

func TestKSRDAWhitenedImprovesCentroidGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xTrain, yTrain := blobs(rng, 90, 10, 3, 4)
	xTest, yTest := blobs(rng, 90, 10, 3, 4)
	plain, err := Fit(xTrain, yTrain, 3, Options{Alpha: 1, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	white, err := FitWhitened(xTrain, yTrain, 3, Options{Alpha: 1, Kernel: Linear{}})
	if err != nil {
		t.Fatal(err)
	}
	e1 := centroidError(plain.Transform(xTrain), yTrain, plain.Transform(xTest), yTest, 3)
	e2 := centroidError(white.Transform(xTrain), yTrain, white.Transform(xTest), yTest, 3)
	if e2 > e1+0.05 {
		t.Fatalf("whitening hurt: %.3f -> %.3f", e1, e2)
	}
}

func TestKernelNames(t *testing.T) {
	if (Linear{}).Name() != "linear" || (Polynomial{Degree: 2}).Name() != "polynomial" || (RBF{Gamma: 1}).Name() != "rbf" {
		t.Fatal("kernel names wrong")
	}
}
