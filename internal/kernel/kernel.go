// Package kernel implements Kernel SRDA — the kernelized variant of
// spectral regression discriminant analysis the paper cites as "Efficient
// kernel discriminant analysis via spectral regression" (Cai, He, Han —
// ICDM 2007).  The responses-generation step is identical to SRDA's; the
// regression step becomes regularized kernel regression: solve
//
//	(K + αI) β_k = ȳ_k
//
// with one shared Cholesky factorization of the m×m kernel matrix, and
// embed new points through e_k(x) = Σᵢ β_ik · κ(x, xᵢ).  This trades the
// O(n)-per-feature cost for O(m²) kernel work and buys nonlinear
// decision boundaries.
package kernel

import (
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/core"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// Kernel is a positive-definite similarity function on feature vectors.
type Kernel interface {
	// Eval computes κ(x, y).
	Eval(x, y []float64) float64
	// Name identifies the kernel in diagnostics.
	Name() string
}

// Linear is the inner-product kernel κ(x,y) = xᵀy (+Offset).
type Linear struct {
	// Offset is added to every evaluation; 0 gives the plain dot product.
	Offset float64
}

// Eval implements Kernel.
func (k Linear) Eval(x, y []float64) float64 { return blas.Dot(x, y) + k.Offset }

// Name implements Kernel.
func (k Linear) Name() string { return "linear" }

// RBF is the Gaussian kernel κ(x,y) = exp(−γ‖x−y‖²).
type RBF struct {
	// Gamma is the inverse bandwidth; must be > 0.
	Gamma float64
}

// Eval implements Kernel.
func (k RBF) Eval(x, y []float64) float64 {
	var d2 float64
	for i := range x {
		d := x[i] - y[i]
		d2 += d * d
	}
	return math.Exp(-k.Gamma * d2)
}

// Name implements Kernel.
func (k RBF) Name() string { return "rbf" }

// Polynomial is κ(x,y) = (xᵀy + Coef)^Degree.
type Polynomial struct {
	Degree int
	Coef   float64
}

// Eval implements Kernel.
func (k Polynomial) Eval(x, y []float64) float64 {
	base := blas.Dot(x, y) + k.Coef
	out := 1.0
	for d := 0; d < k.Degree; d++ {
		out *= base
	}
	return out
}

// Name implements Kernel.
func (k Polynomial) Name() string { return "polynomial" }

// Options configures KSRDA training.
type Options struct {
	// Alpha is the kernel-ridge penalty; must be > 0 for a stable solve
	// (the kernel matrix is often numerically singular).
	Alpha float64
	// Kernel defaults to an RBF whose bandwidth is auto-tuned to the data
	// (γ = 1/mean‖xᵢ−xⱼ‖² over a subsample of pairs — the standard
	// heuristic).
	Kernel Kernel
}

// Model is a trained KSRDA transformer.
type Model struct {
	// X keeps the training samples (kernel expansions need them).
	X *mat.Dense
	// Beta is m×(c−1): expansion coefficients per response.
	Beta *mat.Dense
	// Kernel is the similarity used at train and transform time.
	Kernel Kernel
	// NumClasses is c.
	NumClasses int
	// rowMean and grandMean implement feature-space centering (K̄ = HKH):
	// rowMean[i] is the mean kernel value of training point i against the
	// training set, grandMean the overall mean.  Centering plays the role
	// the intercept-absorption trick plays in linear SRDA.
	rowMean   []float64
	grandMean float64
}

// autoGamma picks the RBF bandwidth from the data: γ = 1/mean‖xᵢ−xⱼ‖²
// over up to 1000 deterministic sample pairs.
func autoGamma(x *mat.Dense) float64 {
	m := x.Rows
	if m < 2 {
		return 1
	}
	var sum float64
	var cnt int
	step := m*m/1000 + 1
	for t := 0; t < m*m; t += step {
		i, j := t/m, t%m
		if i == j {
			continue
		}
		ri, rj := x.RowView(i), x.RowView(j)
		var d2 float64
		for p := range ri {
			d := ri[p] - rj[p]
			d2 += d * d
		}
		sum += d2
		cnt++
	}
	if cnt == 0 || sum == 0 { //srdalint:ignore floatcmp exact zero distance sum degenerates the bandwidth heuristic
		return 1
	}
	return float64(cnt) / sum
}

// Fit trains KSRDA on dense data.
func Fit(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	m := x.Rows
	if m != len(labels) {
		return nil, fmt.Errorf("kernel: %d samples but %d labels", m, len(labels))
	}
	if opt.Alpha <= 0 {
		return nil, fmt.Errorf("kernel: alpha must be positive, got %v", opt.Alpha)
	}
	k := opt.Kernel
	if k == nil {
		k = RBF{Gamma: autoGamma(x)}
	}
	rt, err := core.GenerateResponses(labels, numClasses)
	if err != nil {
		return nil, err
	}
	y := rt.Materialize(labels)

	// Kernel matrix (symmetric; compute the upper triangle).
	gram := mat.NewDense(m, m)
	for i := 0; i < m; i++ {
		ri := x.RowView(i)
		for j := i; j < m; j++ {
			v := k.Eval(ri, x.RowView(j))
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	// Feature-space centering K̄ = HKH with H = I − (1/m)·11ᵀ.  This is
	// the kernel analogue of the paper's intercept-absorption trick: it
	// removes the feature-space mean so the regression needs no bias term.
	rowMean := make([]float64, m)
	var grand float64
	for i := 0; i < m; i++ {
		row := gram.RowView(i)
		var s float64
		for _, v := range row {
			s += v
		}
		rowMean[i] = s / float64(m)
		grand += s
	}
	grand /= float64(m) * float64(m)
	for i := 0; i < m; i++ {
		row := gram.RowView(i)
		for j := range row {
			row[j] += grand - rowMean[i] - rowMean[j]
		}
	}
	for i := 0; i < m; i++ {
		gram.Set(i, i, gram.At(i, i)+opt.Alpha)
	}
	ch, err := decomp.NewCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("kernel: K+αI not positive definite (is the kernel PSD?): %w", err)
	}
	beta := ch.Solve(y)
	return &Model{
		X: x.Clone(), Beta: beta, Kernel: k, NumClasses: numClasses,
		rowMean: rowMean, grandMean: grand,
	}, nil
}

// Dim returns the embedding dimensionality c−1.
func (m *Model) Dim() int { return m.Beta.Cols }

// TransformVec embeds one sample: e_k(x) = Σᵢ β_ik κ̄(x, xᵢ) where κ̄
// applies the training-time feature-space centering.
func (m *Model) TransformVec(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Dim())
	} else {
		for j := range dst {
			dst[j] = 0
		}
	}
	mm := m.X.Rows
	kvals := make([]float64, mm)
	var mean float64
	for i := 0; i < mm; i++ {
		kvals[i] = m.Kernel.Eval(x, m.X.RowView(i))
		mean += kvals[i]
	}
	mean /= float64(mm)
	for i := 0; i < mm; i++ {
		kc := kvals[i] - mean - m.rowMean[i] + m.grandMean
		if kc == 0 { //srdalint:ignore floatcmp exact zero centered value contributes nothing
			continue
		}
		blas.Axpy(kc, m.Beta.RowView(i), dst)
	}
	return dst
}

// Transform embeds every row of x.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	out := mat.NewDense(x.Rows, m.Dim())
	for i := 0; i < x.Rows; i++ {
		m.TransformVec(x.RowView(i), out.RowView(i))
	}
	return out
}

// WhitenWithin rescales the model so the training embedding's
// (shrinkage-regularized) within-class scatter becomes the identity —
// the same metric correction linear SRDA applies (see
// core.WhiteningTransform).  Call with the training data and labels.
func (m *Model) WhitenWithin(labels []int) error {
	emb := m.Transform(m.X)
	rInv, err := core.WhiteningTransform(emb, labels, m.NumClasses)
	if err != nil {
		return err
	}
	if rInv == nil {
		return nil
	}
	m.Beta = mat.Mul(m.Beta, rInv)
	return nil
}

// FitWhitened trains KSRDA and whitens its embedding against the
// training data — the configuration distance-based classifiers want.
func FitWhitened(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	model, err := Fit(x, labels, numClasses, opt)
	if err != nil {
		return nil, err
	}
	if err := model.WhitenWithin(labels); err != nil {
		return nil, err
	}
	return model, nil
}
