package idrqr

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/blas"
	"srda/internal/lda"
	"srda/internal/mat"
)

func randLabels(rng *rand.Rand, m, c int) []int {
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % c
	}
	rng.Shuffle(m, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

func gaussianBlobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := randLabels(rng, m, c)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
		if n > 1 {
			row[1] += sep * 0.5 * float64((labels[i]*3)%c)
		}
	}
	return x, labels
}

func TestFitProducesAtMostCMinus1Directions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := gaussianBlobs(rng, 90, 15, 4, 5)
	model, err := Fit(x, labels, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() > 3 || model.Dim() < 1 {
		t.Fatalf("Dim=%d", model.Dim())
	}
}

func TestSeparatesWellSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xTrain, yTrain := gaussianBlobs(rng, 200, 12, 3, 10)
	xTest, yTest := gaussianBlobs(rng, 100, 12, 3, 10)
	model, err := Fit(xTrain, yTrain, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	errRate := nearestCentroidError(model.Transform(xTrain), yTrain, model.Transform(xTest), yTest, 3)
	if errRate > 0.05 {
		t.Fatalf("error rate %.2f too high on separable data", errRate)
	}
}

func nearestCentroidError(embTrain *mat.Dense, yTrain []int, embTest *mat.Dense, yTest []int, c int) float64 {
	d := embTrain.Cols
	cent := mat.NewDense(c, d)
	counts := make([]float64, c)
	for i, lab := range yTrain {
		counts[lab]++
		blas.Axpy(1, embTrain.RowView(i), cent.RowView(lab))
	}
	for k := 0; k < c; k++ {
		blas.Scal(1/counts[k], cent.RowView(k))
	}
	wrong := 0
	for i := 0; i < embTest.Rows; i++ {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < c; k++ {
			var dist float64
			for j := 0; j < d; j++ {
				diff := embTest.At(i, j) - cent.At(k, j)
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = k, dist
			}
		}
		if best != yTest[i] {
			wrong++
		}
	}
	return float64(wrong) / float64(embTest.Rows)
}

func TestDirectionsLieInCentroidSubspace(t *testing.T) {
	// IDR/QR's defining property: every direction is a combination of the
	// centered class centroids.
	rng := rand.New(rand.NewSource(3))
	m, n, c := 80, 30, 4
	x, labels := gaussianBlobs(rng, m, n, c, 4)
	model, err := Fit(x, labels, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// build the (uncentered) centroid matrix — the span Q is built from
	cent := mat.NewDense(c, n)
	counts := make([]float64, c)
	for i := 0; i < m; i++ {
		counts[labels[i]]++
		blas.Axpy(1, x.RowView(i), cent.RowView(labels[i]))
	}
	for k := 0; k < c; k++ {
		blas.Scal(1/counts[k], cent.RowView(k))
	}
	// project each direction onto span(centᵀ) via least squares and check
	// the residual vanishes
	ct := cent.T() // n×c
	for j := 0; j < model.Dim(); j++ {
		a := model.A.ColCopy(j, nil)
		g := mat.Gram(ct)
		for i := 0; i < g.Rows; i++ {
			g.Set(i, i, g.At(i, i)+1e-12)
		}
		rhs := ct.MulTVec(a, nil)
		coef := solveSmall(t, g, rhs)
		proj := ct.MulVec(coef, nil)
		var resid float64
		for i := range a {
			d := a[i] - proj[i]
			resid += d * d
		}
		if math.Sqrt(resid) > 1e-6*blas.Nrm2(a) {
			t.Fatalf("direction %d leaves the centroid subspace (resid %v)", j, math.Sqrt(resid))
		}
	}
}

func solveSmall(t *testing.T, g *mat.Dense, b []float64) []float64 {
	t.Helper()
	// Gaussian elimination is fine for c×c.
	n := g.Rows
	a := g.Clone()
	x := append([]float64(nil), b...)
	for k := 0; k < n; k++ {
		p := k
		for i := k + 1; i < n; i++ {
			if math.Abs(a.At(i, k)) > math.Abs(a.At(p, k)) {
				p = i
			}
		}
		if p != k {
			for j := 0; j < n; j++ {
				tmp := a.At(k, j)
				a.Set(k, j, a.At(p, j))
				a.Set(p, j, tmp)
			}
			x[k], x[p] = x[p], x[k]
		}
		piv := a.At(k, k)
		if piv == 0 {
			t.Fatal("singular system in test helper")
		}
		for i := k + 1; i < n; i++ {
			f := a.At(i, k) / piv
			for j := k; j < n; j++ {
				a.Set(i, j, a.At(i, j)-f*a.At(k, j))
			}
			x[i] -= f * x[k]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= a.At(i, j) * x[j]
		}
		x[i] = s / a.At(i, i)
	}
	return x
}

func TestTransformVecMatchesTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := gaussianBlobs(rng, 60, 10, 3, 5)
	model, err := Fit(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	v := model.TransformVec(x.RowView(7), nil)
	for j := range v {
		if math.Abs(v[j]-emb.At(7, j)) > 1e-10 {
			t.Fatal("TransformVec disagrees")
		}
	}
}

func TestWorksWhenNGreaterThanM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := gaussianBlobs(rng, 30, 100, 3, 6)
	model, err := Fit(x, labels, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.Transform(x)
	for i := range emb.Data {
		if math.IsNaN(emb.Data[i]) {
			t.Fatal("NaN in embedding")
		}
	}
}

// correlatedBlobs builds data where a strong within-class noise factor is
// correlated with the discriminative direction: class means sit along e₀
// while the shared noise factor points along (e₀+e₁)/√2 with large
// variance.  Full-space discriminant analysis can rotate away from the
// noise; IDR/QR, confined to the centroid span, cannot — this is the
// regime where the paper's "RLDA/SRDA beat IDR/QR" finding holds.
func correlatedBlobs(rng *rand.Rand, m, n, c int) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := randLabels(rng, m, c)
	inv := 1 / math.Sqrt2
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.5 * rng.NormFloat64()
		}
		row[0] += 3 * float64(labels[i])
		f := 6 * rng.NormFloat64()
		row[0] += f * inv
		row[1] += f * inv
	}
	return x, labels
}

func TestAccuracyTrailsRegularizedLDAOnCorrelatedNoise(t *testing.T) {
	// The paper's experimental finding: RLDA beats IDR/QR.  That holds
	// when the within-class covariance is anisotropic and not aligned with
	// the centroid subspace (real data; correlatedBlobs mimics it).
	rng := rand.New(rand.NewSource(6))
	var idrqrErr, rldaErr float64
	const trials = 5
	for trial := 0; trial < trials; trial++ {
		xTrain, yTrain := correlatedBlobs(rng, 150, 20, 3)
		xTest, yTest := correlatedBlobs(rng, 300, 20, 3)
		im, err := Fit(xTrain, yTrain, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lm, err := lda.Fit(xTrain, yTrain, 3, lda.Options{Alpha: 1})
		if err != nil {
			t.Fatal(err)
		}
		idrqrErr += nearestCentroidError(im.Transform(xTrain), yTrain, im.Transform(xTest), yTest, 3)
		rldaErr += nearestCentroidError(lm.Transform(xTrain), yTrain, lm.Transform(xTest), yTest, 3)
	}
	if rldaErr >= idrqrErr {
		t.Fatalf("RLDA (%.3f) should beat IDR/QR (%.3f) under correlated noise", rldaErr/trials, idrqrErr/trials)
	}
}

func TestFitValidation(t *testing.T) {
	x := mat.NewDense(4, 3)
	if _, err := Fit(x, []int{0, 1}, 2, Options{}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := Fit(x, []int{0, 0, 0, 0}, 2, Options{}); err == nil {
		t.Fatal("empty class accepted")
	}
}
