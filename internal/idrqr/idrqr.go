// Package idrqr implements the IDR/QR baseline (Ye, Li, Xiong, Park,
// Janardan, Kumar — KDD 2004) the paper compares against: an LDA variant
// that replaces the SVD of the data matrix with a QR decomposition of the
// much smaller class-centroid matrix, making training cost O(mnc).
//
// Algorithm:
//
//  1. Form the c×n centroid matrix C (one row per class mean) and the
//     global mean μ.
//  2. Thin QR of (C − 1μᵀ)ᵀ → orthonormal Q (n×q, q ≤ c) spanning the
//     centroid subspace.  This is the "QR" of IDR/QR.
//  3. Project the scatter problem into that subspace: B = QᵀS_bQ and
//     W = QᵀS_wQ are tiny q×q matrices assembled in O(mnq).
//  4. Solve the regularized eigenproblem (W + μI)⁻¹B v = λ v via Cholesky
//     whitening and a symmetric eigensolve; keep directions with λ > 0.
//  5. The discriminant directions are G = Q·R⁻ᵀ... mapped back through
//     the whitening, i.e. A = Q · L⁻ᵀ V where W + μI = LLᵀ.
//
// As the paper notes, IDR/QR is very fast but optimizes a criterion only
// loosely related to LDA's, and its accuracy trails RLDA/SRDA.
package idrqr

import (
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// Options configures IDR/QR.
type Options struct {
	// Reg is the within-scatter regularizer μ added before inversion
	// (default 1e-6 relative to trace).
	Reg float64
}

// Model is a trained IDR/QR transformer: x ↦ Aᵀ(x − μ).
type Model struct {
	// A is the n×d projection (d ≤ c−1).
	A *mat.Dense
	// Mu is the training mean.
	Mu []float64
	// Eigenvalues are the generalized eigenvalues of the reduced problem.
	Eigenvalues []float64
	// NumClasses is c.
	NumClasses int
}

// Fit trains IDR/QR on dense data.
func Fit(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	m, n := x.Rows, x.Cols
	if m != len(labels) {
		return nil, fmt.Errorf("idrqr: %d samples but %d labels", m, len(labels))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("idrqr: need at least 2 classes")
	}
	counts := make([]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("idrqr: label %d at sample %d out of range", y, i)
		}
		counts[y]++
	}

	// Step 1: centroids and global mean.
	cent := mat.NewDense(numClasses, n)
	mu := make([]float64, n)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		blas.Axpy(1, row, cent.RowView(labels[i]))
		blas.Axpy(1, row, mu)
	}
	blas.Scal(1/float64(m), mu)
	for k := 0; k < numClasses; k++ {
		if counts[k] == 0 {
			return nil, fmt.Errorf("idrqr: class %d has no samples", k)
		}
		blas.Scal(1/float64(counts[k]), cent.RowView(k))
	}

	// Step 2: thin QR of the (uncentered) centroid matrix, transposed to
	// n×c.  Ye et al. factor the raw centroids: they have full rank c in
	// general (the centered ones only have rank c−1, which would leave one
	// arbitrary basis direction in Q).
	qr := decomp.NewQR(cent.T())
	q := qr.ThinQ() // n×q with q = min(n, c)
	qDim := q.Cols

	// Centered centroids, used to assemble the reduced between-scatter.
	cc := cent.Clone()
	for k := 0; k < numClasses; k++ {
		blas.Axpy(-1, mu, cc.RowView(k))
	}

	// Step 3: reduced scatters.  y_k = Qᵀ(c_k − μ); B = Σ m_k y_k y_kᵀ.
	bMat := mat.NewDense(qDim, qDim)
	yk := make([]float64, qDim)
	for k := 0; k < numClasses; k++ {
		q.MulTVec(cc.RowView(k), yk)
		blas.Ger(qDim, qDim, float64(counts[k]), yk, yk, bMat.Data, bMat.Stride)
	}
	// W = Σ_i z_i z_iᵀ with z_i = Qᵀ(x_i − c_{label_i}).
	wMat := mat.NewDense(qDim, qDim)
	diff := make([]float64, n)
	zi := make([]float64, qDim)
	for i := 0; i < m; i++ {
		copy(diff, x.RowView(i))
		blas.Axpy(-1, cent.RowView(labels[i]), diff)
		q.MulTVec(diff, zi)
		blas.Ger(qDim, qDim, 1, zi, zi, wMat.Data, wMat.Stride)
	}

	// Step 4: regularize W and whiten: (W + μI) = RᵀR (upper-triangular R),
	// then eigendecompose R⁻ᵀ B R⁻¹.
	var trace float64
	for i := 0; i < qDim; i++ {
		trace += wMat.At(i, i)
	}
	reg := opt.Reg
	if reg <= 0 {
		reg = 1e-6 * (1 + trace/float64(qDim))
	}
	for i := 0; i < qDim; i++ {
		wMat.Set(i, i, wMat.At(i, i)+reg)
	}
	ch, err := decomp.NewCholesky(wMat)
	if err != nil {
		return nil, fmt.Errorf("idrqr: regularized within-scatter not PD: %w", err)
	}
	// M = R⁻ᵀ B R⁻¹ computed by two triangular solves.
	mRed := decomp.SolveUpperTranspose(ch.R, bMat) // R⁻ᵀ B
	mRed = decomp.SolveUpperTranspose(ch.R, mRed.T())
	// symmetrize roundoff
	for i := 0; i < qDim; i++ {
		for j := 0; j < i; j++ {
			v := (mRed.At(i, j) + mRed.At(j, i)) / 2
			mRed.Set(i, j, v)
			mRed.Set(j, i, v)
		}
	}
	eig, err := decomp.NewSymEig(mRed)
	if err != nil {
		return nil, fmt.Errorf("idrqr: eigen: %w", err)
	}
	maxDirs := numClasses - 1
	dirs := 0
	tol := 1e-10 * math.Max(1, eig.Values[0])
	for dirs < maxDirs && dirs < len(eig.Values) && eig.Values[dirs] > tol {
		dirs++
	}
	if dirs == 0 {
		return nil, fmt.Errorf("idrqr: no discriminative directions found")
	}

	// Step 5: map back: columns of V are whitened directions; the reduced
	// directions are u = R⁻¹ v, and finally A = Q u.
	u := mat.NewDense(qDim, dirs)
	v := make([]float64, qDim)
	for j := 0; j < dirs; j++ {
		eig.Vectors.ColCopy(j, v)
		decomp.SolveUpperVec(ch.R, v)
		u.SetCol(j, v)
	}
	a := mat.Mul(q, u)

	return &Model{A: a, Mu: mu, Eigenvalues: eig.Values[:dirs], NumClasses: numClasses}, nil
}

// Dim returns the number of directions kept.
func (m *Model) Dim() int { return m.A.Cols }

// Transform embeds the rows of x: Z = (X − 1μᵀ)·A.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	if x.Cols != m.A.Rows {
		panic(fmt.Sprintf("idrqr: Transform feature mismatch: data has %d, model %d", x.Cols, m.A.Rows))
	}
	out := mat.Mul(x, m.A)
	shift := m.A.MulTVec(m.Mu, nil)
	for i := 0; i < out.Rows; i++ {
		blas.Axpy(-1, shift, out.RowView(i))
	}
	return out
}

// TransformVec embeds one sample.
func (m *Model) TransformVec(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Dim())
	}
	centered := make([]float64, len(x))
	for i := range x {
		centered[i] = x[i] - m.Mu[i]
	}
	m.A.MulTVec(centered, dst)
	return dst
}
