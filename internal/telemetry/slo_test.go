package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srda/internal/obs"
)

func validConfig() string {
	return `{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "availability", "kind": "availability", "metric": "srdaroute_requests_total", "target": 0.99},
    {"name": "latency", "kind": "latency_p99", "metric": "srdaserve_request_latency_p99", "target": 0.95, "threshold_seconds": 0.25}
  ]
}`
}

func TestValidateSLOConfig(t *testing.T) {
	cfg, err := ValidateSLOConfig([]byte(validConfig()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Windows) != 2 || cfg.Windows[0].Name != "fast" || cfg.Windows[1].Burn != 6 {
		t.Errorf("default windows = %+v", cfg.Windows)
	}
	if cfg.Objectives[0].CodeLabel != "code" || cfg.Objectives[0].PendingForSeconds != 60 {
		t.Errorf("availability defaults = %+v", cfg.Objectives[0])
	}

	bad := []struct {
		name string
		doc  string
	}{
		{"wrong schema", `{"schema": "srda-slo/v2", "objectives": [{"name": "a", "kind": "availability", "metric": "m", "target": 0.9}]}`},
		{"no objectives", `{"schema": "srda-slo/v1", "objectives": []}`},
		{"unknown field", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "availability", "metric": "m", "target": 0.9}], "extra": 1}`},
		{"unknown kind", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "latency_p50", "metric": "m", "target": 0.9}]}`},
		{"target out of range", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "availability", "metric": "m", "target": 1.5}]}`},
		{"latency without threshold", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "latency_p99", "metric": "m", "target": 0.9}]}`},
		{"duplicate objective", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "availability", "metric": "m", "target": 0.9}, {"name": "a", "kind": "availability", "metric": "m", "target": 0.9}]}`},
		{"bad window", `{"schema": "srda-slo/v1", "objectives": [{"name": "a", "kind": "availability", "metric": "m", "target": 0.9}], "windows": [{"name": "w", "short_seconds": 60, "long_seconds": 30, "burn": 2}]}`},
	}
	for _, c := range bad {
		if _, err := ValidateSLOConfig([]byte(c.doc)); err == nil {
			t.Errorf("%s: config accepted", c.name)
		}
	}
}

// ingestCounts pushes one availability counter point per code at now.
func ingestCounts(st *Store, now time.Time, ok, errs float64) {
	st.Ingest(now, []obs.PromFamily{{
		Name: "srdaroute_requests_total", Type: "counter",
		Samples: []obs.PromSample{
			{Name: "srdaroute_requests_total", Labels: []obs.PromLabel{{Name: "code", Value: "200"}}, Value: ok},
			{Name: "srdaroute_requests_total", Labels: []obs.PromLabel{{Name: "code", Value: "503"}}, Value: errs},
		},
	}})
}

// TestSLOLifecycle drives one alert through the full state machine
// under a frozen clock: clean traffic, then a 503 burst (pending, then
// firing after pending_for holds), then recovery (resolved), and the
// slo_burn flight bundle lands on the firing transition.
func TestSLOLifecycle(t *testing.T) {
	dir := t.TempDir()
	now := t0
	clock := func() time.Time { return now }

	flight := obs.NewFlightRecorder(obs.FlightOptions{
		Dir: dir, Process: "router-test", Clock: clock, Cooldown: time.Millisecond,
	})
	reg := obs.NewRegistry()
	cfg, err := ValidateSLOConfig([]byte(`{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "availability", "kind": "availability", "metric": "srdaroute_requests_total",
     "target": 0.99, "pending_for_seconds": 30}
  ],
  "windows": [{"name": "fast", "short_seconds": 60, "long_seconds": 300, "burn": 10}]
}`))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(256)
	eng := NewSLOEngine(cfg, st, SLOEngineOptions{Clock: clock, Registry: reg, Flight: flight})

	find := func() Alert {
		alerts := eng.Alerts()
		if len(alerts) != 1 {
			t.Fatalf("alerts = %+v", alerts)
		}
		return alerts[0]
	}

	// 5 minutes of clean traffic at 10 rps.
	var ok, errs float64
	for sec := 0; sec <= 300; sec += 15 {
		now = t0.Add(time.Duration(sec) * time.Second)
		ok += 150
		ingestCounts(st, now, ok, errs)
		eng.Evaluate(now)
	}
	if a := find(); a.State != StateInactive {
		t.Fatalf("after clean traffic: %+v", a)
	}

	// Error burst: every request 503s.  Burn = 1.0/0.01 = 100 >> 10 in
	// the short window; the long window needs enough errored history to
	// cross too.
	burstStart := now
	for sec := 15; sec <= 45; sec += 15 {
		now = burstStart.Add(time.Duration(sec) * time.Second)
		errs += 150
		ingestCounts(st, now, ok, errs)
		eng.Evaluate(now)
	}
	a := find()
	if a.State != StatePending {
		t.Fatalf("mid-burst: %+v", a)
	}
	if a.Burn < 10 || a.LongBurn < 10 {
		t.Fatalf("burn rates not over threshold: %+v", a)
	}

	// Hold the burst past pending_for: fires.
	for sec := 60; sec <= 90; sec += 15 {
		now = burstStart.Add(time.Duration(sec) * time.Second)
		errs += 150
		ingestCounts(st, now, ok, errs)
		eng.Evaluate(now)
	}
	a = find()
	if a.State != StateFiring {
		t.Fatalf("after pending_for: %+v", a)
	}
	if flight.DumpCount() != 1 {
		t.Fatalf("flight dumps = %d, want 1", flight.DumpCount())
	}

	// The dumped bundle validates and carries the slo_burn trigger.
	matches, err := filepath.Glob(filepath.Join(dir, "flight-slo_burn-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("bundle files = %v (%v)", matches, err)
	}
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	bundle, err := obs.ValidateFlightBundle(data)
	if err != nil {
		t.Fatalf("bundle does not validate: %v", err)
	}
	if bundle.Trigger != "slo_burn" || bundle.Threshold != 10 || bundle.Value < 10 {
		t.Errorf("bundle = trigger %q value %v threshold %v", bundle.Trigger, bundle.Value, bundle.Threshold)
	}

	// Recovery: clean traffic again until the short window's errors
	// slide out; the alert resolves.
	recStart := now
	for sec := 15; sec <= 120; sec += 15 {
		now = recStart.Add(time.Duration(sec) * time.Second)
		ok += 150
		ingestCounts(st, now, ok, errs)
		eng.Evaluate(now)
	}
	a = find()
	if a.State != StateResolved {
		t.Fatalf("after recovery: %+v", a)
	}
	if a.Transitions != 3 { // inactive -> pending -> firing -> resolved
		t.Errorf("transitions = %d, want 3", a.Transitions)
	}

	// srdaslo_* metrics recorded the journey.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	exp := sb.String()
	for _, want := range []string{
		`srdaslo_transitions_total{objective="availability",window="fast",to="pending"} 1`,
		`srdaslo_transitions_total{objective="availability",window="fast",to="firing"} 1`,
		`srdaslo_transitions_total{objective="availability",window="fast",to="resolved"} 1`,
		"srdaslo_alerts_firing 0",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q\n%s", want, exp)
		}
	}
}

// TestSLOLatencyObjective checks the latency_p99 burn path: a gauge
// series sitting above the threshold burns budget, below does not.
func TestSLOLatencyObjective(t *testing.T) {
	now := t0
	cfg, err := ValidateSLOConfig([]byte(`{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "latency", "kind": "latency_p99", "metric": "srdaserve_request_latency_p99",
     "target": 0.9, "threshold_seconds": 0.25, "pending_for_seconds": 1}
  ],
  "windows": [{"name": "fast", "short_seconds": 60, "long_seconds": 120, "burn": 5}]
}`))
	if err != nil {
		t.Fatal(err)
	}
	st := NewStore(64)
	eng := NewSLOEngine(cfg, st, SLOEngineOptions{Clock: func() time.Time { return now }})

	gauge := func(v float64, when time.Time) {
		st.Ingest(when, []obs.PromFamily{{
			Name: "srdaserve_request_latency_p99", Type: "gauge",
			Samples: []obs.PromSample{{Name: "srdaserve_request_latency_p99", Value: v}},
		}})
	}
	for sec := 0; sec <= 120; sec += 15 {
		now = t0.Add(time.Duration(sec) * time.Second)
		gauge(0.1, now)
		eng.Evaluate(now)
	}
	if a := eng.Alerts()[0]; a.State != StateInactive || a.Burn != 0 {
		t.Fatalf("fast latency: %+v", a)
	}
	slowStart := now
	for sec := 15; sec <= 90; sec += 15 {
		now = slowStart.Add(time.Duration(sec) * time.Second)
		gauge(0.9, now)
		eng.Evaluate(now)
	}
	a := eng.Alerts()[0]
	if a.State != StateFiring {
		t.Fatalf("slow latency: %+v", a)
	}
}

func TestAlertsHandler(t *testing.T) {
	cfg, err := ValidateSLOConfig([]byte(validConfig()))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSLOEngine(cfg, NewStore(16), SLOEngineOptions{Clock: func() time.Time { return t0 }})
	rec := httptest.NewRecorder()
	eng.Handler()(rec, httptest.NewRequest("GET", "/debug/alerts", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Alerts []Alert `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	// 2 objectives × 2 default windows, sorted by objective/window.
	if len(body.Alerts) != 4 || body.Alerts[0].Objective != "availability" || body.Alerts[0].Window != "fast" {
		t.Errorf("alert table = %+v", body.Alerts)
	}
	rec = httptest.NewRecorder()
	eng.Handler()(rec, httptest.NewRequest("POST", "/debug/alerts", nil))
	if rec.Code != 405 {
		t.Errorf("POST code = %d", rec.Code)
	}
}
