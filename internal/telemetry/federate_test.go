package telemetry

import (
	"context"
	"errors"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"srda/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedWorker builds one fake replica: a registry with the fleet-view
// metrics at fixed values and a latency sketch over a fixed stream.
func fixedWorker(base float64, queue int64, p99 float64) (*obs.Registry, *obs.CounterVec, func() map[string]obs.SketchSnapshot) {
	reg := obs.NewRegistry()
	requests := reg.NewCounterVec("srdaserve_requests_total",
		"HTTP requests by endpoint and status code.", "endpoint", "code")
	reg.NewGaugeFunc("srdaserve_queue_depth",
		"Samples currently queued for dispatch.", func() int64 { return queue })
	reg.NewGaugeFloatFunc("srdaserve_request_latency_p99",
		"Streaming 99th-percentile predict latency in seconds.", func() float64 { return p99 })
	sketch := obs.NewQuantileSketch()
	for i := 1; i <= 1000; i++ {
		sketch.Observe(base + float64(i)/1000)
	}
	sketches := func() map[string]obs.SketchSnapshot {
		return map[string]obs.SketchSnapshot{"srdaserve_request_latency": sketch.Snapshot()}
	}
	return reg, requests, sketches
}

// buildFederation assembles two healthy fixed replicas plus one target
// that always fails, scrapes twice under a frozen clock, and returns
// the federator.
func buildFederation(t *testing.T) *Federator {
	t.Helper()
	reg0, req0, sk0 := fixedWorker(0, 2, 0.2)
	reg1, req1, sk1 := fixedWorker(1, 5, 0.9)
	targets := []Target{
		RegistryTarget("w0", sk0, reg0),
		RegistryTarget("w1", sk1, reg1),
		{Replica: "w2", Fetch: func(context.Context) ([]byte, error) {
			return nil, errors.New("connection refused")
		}},
	}
	now := t0
	f := NewFederator(targets, FederatorOptions{
		Clock:      func() time.Time { return now },
		RateWindow: 30 * time.Second,
	})

	req0.With("/v1/predict", "200").Add(100)
	req1.With("/v1/predict", "200").Add(200)
	req1.With("/v1/predict", "503").Add(10)
	f.Scrape(context.Background(), now)

	req0.With("/v1/predict", "200").Add(30)
	req1.With("/v1/predict", "200").Add(30)
	req1.With("/v1/predict", "503").Add(30)
	now = t0.Add(15 * time.Second)
	f.Scrape(context.Background(), now)
	return f
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestClusterMetricsGolden pins /cluster/metrics byte-for-byte: fixed
// targets scraped at frozen instants must render identically forever —
// the determinism contract dashboards and diff-based tooling rely on.
func TestClusterMetricsGolden(t *testing.T) {
	f := buildFederation(t)
	rec := httptest.NewRecorder()
	f.MetricsHandler()(rec, httptest.NewRequest("GET", "/cluster/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}
	checkGolden(t, "cluster_metrics.golden", rec.Body.Bytes())

	// Rendering twice yields identical bytes — no map-order leakage.
	rec2 := httptest.NewRecorder()
	f.MetricsHandler()(rec2, httptest.NewRequest("GET", "/cluster/metrics", nil))
	if rec.Body.String() != rec2.Body.String() {
		t.Error("two renders of /cluster/metrics differ")
	}
}

// TestClusterSnapshotGolden pins the /cluster/snapshot JSON document.
func TestClusterSnapshotGolden(t *testing.T) {
	f := buildFederation(t)
	rec := httptest.NewRecorder()
	f.SnapshotHandler()(rec, httptest.NewRequest("GET", "/cluster/snapshot", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	checkGolden(t, "cluster_snapshot.golden", rec.Body.Bytes())

	snap, err := ValidateClusterSnapshot(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Replicas) != 3 {
		t.Fatalf("replicas = %+v", snap.Replicas)
	}
	w1 := snap.Replicas[1]
	// 60 requests (30 ok + 30 errored) over the second 15s interval,
	// rated over the 30s window.
	if w1.Replica != "w1" || !w1.Up || w1.RequestRate != 2 || w1.ErrorRate != 1 {
		t.Errorf("w1 row = %+v", w1)
	}
	if w1.P99Seconds != 0.9 || w1.QueueDepth != 5 {
		t.Errorf("w1 gauges = %+v", w1)
	}
	w2 := snap.Replicas[2]
	if w2.Up || w2.Error == "" {
		t.Errorf("down replica row = %+v", w2)
	}

	// Merged cluster quantiles span both replicas' ranges: w0 observed
	// (0, 1], w1 observed (1, 2] — the cluster p50 sits at the seam and
	// the p99 in w1's tail, which no single replica's sketch contains.
	if len(snap.Quantiles) != 1 {
		t.Fatalf("quantiles = %+v", snap.Quantiles)
	}
	q := snap.Quantiles[0]
	if q.Metric != "srdaserve_request_latency" || q.Count != 2000 {
		t.Errorf("merged sketch = %+v", q)
	}
	if q.P50 < 0.95 || q.P50 > 1.05 {
		t.Errorf("cluster p50 = %v, want ~1.0", q.P50)
	}
	if q.P99 < 1.93 || q.P99 > 2.0 {
		t.Errorf("cluster p99 = %v, want ~1.98", q.P99)
	}
}

// TestReplicaLabelCollision scrapes a registry whose series already
// carry a replica label (the router's srdaroute_* set does) and checks
// the scraped label is renamed exported_replica instead of colliding
// with the federation tag into a duplicate label name.
func TestReplicaLabelCollision(t *testing.T) {
	reg := obs.NewRegistry()
	routed := reg.NewCounterVec("srdaroute_requests_total",
		"Routed predict requests by backend replica and status code.", "replica", "code")
	routed.With("w0", "200").Add(7)
	f := NewFederator([]Target{RegistryTarget("router", nil, reg)}, FederatorOptions{
		Clock: func() time.Time { return t0 },
	})
	f.Scrape(context.Background(), t0)

	var sb strings.Builder
	f.WriteClusterMetrics(&sb)
	want := `srdaroute_requests_total{code="200",exported_replica="w0",replica="router"} 7`
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("cluster exposition missing %q:\n%s", want, sb.String())
	}
	// The rendered exposition must stay parseable by the shared grammar
	// (a duplicate label name would make it illegal Prometheus text).
	if _, err := obs.ParsePrometheus([]byte(sb.String())); err != nil {
		t.Fatalf("cluster exposition does not re-parse: %v", err)
	}
}

// TestFederatorSLOIntegration wires an SLO engine to the federated
// store and checks a scrape pass evaluates it over replica-tagged
// series.
func TestFederatorSLOIntegration(t *testing.T) {
	reg0, req0, _ := fixedWorker(0, 0, 0.1)
	f := NewFederator([]Target{RegistryTarget("w0", nil, reg0)}, FederatorOptions{
		Clock: func() time.Time { return t0 },
	})
	cfg, err := ValidateSLOConfig([]byte(`{
  "schema": "srda-slo/v1",
  "objectives": [
    {"name": "availability", "kind": "availability", "metric": "srdaserve_requests_total",
     "target": 0.99, "pending_for_seconds": 1}
  ],
  "windows": [{"name": "fast", "short_seconds": 60, "long_seconds": 120, "burn": 5}]
}`))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewSLOEngine(cfg, f.Store(), SLOEngineOptions{Clock: func() time.Time { return t0 }})
	f.AttachSLO(eng)

	now := t0
	req0.With("/v1/predict", "200").Add(100)
	f.Scrape(context.Background(), now)
	for sec := 15; sec <= 60; sec += 15 {
		now = t0.Add(time.Duration(sec) * time.Second)
		req0.With("/v1/predict", "503").Add(50)
		f.Scrape(context.Background(), now)
	}
	alerts := eng.Alerts()
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("federated SLO alerts = %+v", alerts)
	}
	if alerts[0].Burn < 5 {
		t.Errorf("burn = %v", alerts[0].Burn)
	}
}
