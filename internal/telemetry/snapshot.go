package telemetry

// The /cluster/snapshot document: one JSON object describing the fleet
// at a scrape instant — per-replica status and derived rates, merged
// cluster quantiles, and the SLO alert table.  srdareport top renders
// it; anything else (dashboards, scripts) can consume it too, which is
// why it carries a schema tag like the flight bundles do.

import (
	"encoding/json"
	"net/http"
	"strings"
	"time"
)

// ClusterSchema is the snapshot schema identifier.
const ClusterSchema = "srda-cluster/v1"

// ReplicaStatus is one row of the fleet table.
type ReplicaStatus struct {
	Replica     string    `json:"replica"`
	Up          bool      `json:"up"`
	LastScrape  time.Time `json:"last_scrape"`
	Error       string    `json:"error,omitempty"`
	RequestRate float64   `json:"request_rate"` // req/s over the rate window
	ErrorRate   float64   `json:"error_rate"`   // 5xx/s over the rate window
	P99Seconds  float64   `json:"p99_seconds"`
	QueueDepth  float64   `json:"queue_depth"`
}

// ClusterQuantile is one merged cluster-level sketch.
type ClusterQuantile struct {
	Metric string  `json:"metric"`
	Count  int     `json:"count"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
}

// ClusterSnapshot is the /cluster/snapshot document.
type ClusterSnapshot struct {
	Schema    string            `json:"schema"`
	Time      time.Time         `json:"time"`
	Replicas  []ReplicaStatus   `json:"replicas"`
	Quantiles []ClusterQuantile `json:"quantiles"`
	Alerts    []Alert           `json:"alerts"`
	Series    int               `json:"series"`
}

// Snapshot assembles the cluster document at now.  Rates are computed
// over the federator's RateWindow ending at now; gauge columns take
// each series' latest point.
func (f *Federator) Snapshot(now time.Time) ClusterSnapshot {
	f.mu.Lock()
	replicas := sortedKeys(f.status)
	status := make(map[string]replicaScrape, len(replicas))
	//srdalint:ignore maprange copying into another map; row order comes from the sorted replica list
	for name, st := range f.status {
		status[name] = *st
	}
	slo := f.slo
	f.mu.Unlock()

	from := now.Add(-f.opts.RateWindow)
	rows := make([]ReplicaStatus, 0, len(replicas))
	byReplica := make(map[string]*ReplicaStatus, len(replicas))
	for _, name := range replicas {
		st := status[name]
		rows = append(rows, ReplicaStatus{
			Replica:    name,
			Up:         st.up,
			LastScrape: st.lastScrape,
			Error:      st.lastErr,
		})
		byReplica[name] = &rows[len(rows)-1]
	}
	for _, si := range f.store.Query(fleetRequestsMetric) {
		row, ok := byReplica[si.Label(ReplicaLabel)]
		if !ok {
			continue
		}
		rate := RateOver(si.Points, from, now)
		row.RequestRate += rate
		if strings.HasPrefix(si.Label("code"), "5") {
			row.ErrorRate += rate
		}
	}
	for _, si := range f.store.Query(fleetP99Metric) {
		if row, ok := byReplica[si.Label(ReplicaLabel)]; ok {
			if p, haveP := si.Latest(); haveP {
				row.P99Seconds = nanToZero(p.V)
			}
		}
	}
	for _, si := range f.store.Query(fleetQueueMetric) {
		if row, ok := byReplica[si.Label(ReplicaLabel)]; ok {
			if p, haveP := si.Latest(); haveP {
				row.QueueDepth = nanToZero(p.V)
			}
		}
	}

	snap := ClusterSnapshot{
		Schema:    ClusterSchema,
		Time:      now.UTC(),
		Replicas:  rows,
		Quantiles: f.mergedSketches(),
		Alerts:    slo.Alerts(),
		Series:    f.store.SeriesCount(),
	}
	if snap.Quantiles == nil {
		snap.Quantiles = []ClusterQuantile{}
	}
	if snap.Alerts == nil {
		snap.Alerts = []Alert{}
	}
	return snap
}

// ValidateClusterSnapshot parses data as a ClusterSnapshot and checks
// the schema — the contract srdareport top holds server replies to.
func ValidateClusterSnapshot(data []byte) (*ClusterSnapshot, error) {
	var snap ClusterSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, err
	}
	if snap.Schema != ClusterSchema {
		return nil, &SchemaError{Got: snap.Schema, Want: ClusterSchema}
	}
	return &snap, nil
}

// SchemaError reports a snapshot document with the wrong schema tag.
type SchemaError struct{ Got, Want string }

func (e *SchemaError) Error() string {
	return "telemetry: cluster snapshot schema " + strconvQuote(e.Got) + ", want " + strconvQuote(e.Want)
}

func strconvQuote(s string) string { return `"` + s + `"` }

// SnapshotHandler serves /cluster/snapshot.
func (f *Federator) SnapshotHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.Snapshot(f.clock()))
	}
}
