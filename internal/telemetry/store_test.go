package telemetry

import (
	"testing"
	"time"

	"srda/internal/obs"
)

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

func pts(pairs ...float64) []Point {
	out := make([]Point, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, Point{T: at(int(pairs[i])), V: pairs[i+1]})
	}
	return out
}

func TestStoreRingBounds(t *testing.T) {
	st := NewStore(4)
	fam := []obs.PromFamily{{Name: "m", Type: "counter", Samples: []obs.PromSample{{Name: "m", Value: 0}}}}
	for i := 0; i < 10; i++ {
		fam[0].Samples[0].Value = float64(i)
		st.Ingest(at(i), fam)
	}
	snap := st.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("series count = %d", len(snap))
	}
	got := snap[0].Points
	if len(got) != 4 {
		t.Fatalf("ring retained %d points, want 4", len(got))
	}
	// Oldest-first, the last 4 ingested.
	for i, p := range got {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v", i, p.V, want)
		}
	}
}

func TestStoreSampleRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.NewCounter("srdatest_total", "Test counter.")
	vec := reg.NewCounterVec("srdatest_by_code", "By code.", "code")
	c.Add(3)
	vec.With("200").Add(2)
	vec.With("503").Inc()

	st := NewStore(8)
	if err := st.SampleRegistry(at(0), reg); err != nil {
		t.Fatal(err)
	}
	c.Add(1)
	if err := st.SampleRegistry(at(15), reg); err != nil {
		t.Fatal(err)
	}
	if n := st.SeriesCount(); n != 3 {
		t.Fatalf("series = %d, want 3", n)
	}
	q := st.Query("srdatest_by_code")
	if len(q) != 2 {
		t.Fatalf("by_code series = %d", len(q))
	}
	// Query is sorted by canonical key: code="200" before code="503".
	if q[0].Label("code") != "200" || q[1].Label("code") != "503" {
		t.Errorf("query order: %q, %q", q[0].Key, q[1].Key)
	}
	total := st.Query("srdatest_total")
	if len(total) != 1 || len(total[0].Points) != 2 {
		t.Fatalf("total series = %+v", total)
	}
	if inc := IncreaseOver(total[0].Points, at(0), at(15)); inc != 1 {
		t.Errorf("increase = %v, want 1", inc)
	}
}

func TestIncreaseOver(t *testing.T) {
	cases := []struct {
		name     string
		points   []Point
		from, to int
		want     float64
	}{
		{"simple", pts(0, 10, 10, 14, 20, 20), 0, 20, 10},
		{"baseline before window", pts(0, 10, 10, 14, 20, 20), 5, 20, 10},
		{"window excludes tail", pts(0, 10, 10, 14, 20, 20), 0, 10, 4},
		{"counter reset", pts(0, 10, 10, 2, 20, 5), 0, 20, 3},
		{"no points in window", pts(0, 10), 10, 20, 0},
		{"empty", nil, 0, 20, 0},
		{"single point no baseline", pts(15, 7), 10, 20, 0},
	}
	for _, c := range cases {
		if got := IncreaseOver(c.points, at(c.from), at(c.to)); got != c.want {
			t.Errorf("%s: increase = %v, want %v", c.name, got, c.want)
		}
	}
	if r := RateOver(pts(0, 0, 10, 20), at(0), at(10)); r != 2 {
		t.Errorf("rate = %v, want 2", r)
	}
}

func TestFractionOver(t *testing.T) {
	p := pts(1, 0.1, 2, 0.9, 3, 0.9, 4, 0.2)
	frac, n := FractionOver(p, 0.5, at(0), at(4))
	if n != 4 || frac != 0.5 {
		t.Errorf("frac = %v over %d points, want 0.5 over 4", frac, n)
	}
	frac, n = FractionOver(p, 0.5, at(2), at(4))
	if n != 2 || frac != 0.5 {
		t.Errorf("windowed frac = %v over %d, want 0.5 over 2", frac, n)
	}
	if _, n := FractionOver(p, 0.5, at(10), at(20)); n != 0 {
		t.Errorf("empty window counted %d points", n)
	}
}

func TestStartPoller(t *testing.T) {
	ticks := make(chan time.Time)
	var got []time.Time
	done := StartPoller(ticks, func(now time.Time) { got = append(got, now) })
	ticks <- at(1)
	ticks <- at(2)
	close(ticks)
	<-done
	if len(got) != 2 || !got[0].Equal(at(1)) || !got[1].Equal(at(2)) {
		t.Errorf("poller saw %v", got)
	}
}
