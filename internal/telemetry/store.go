// Package telemetry is the cluster telemetry plane: a bounded
// in-process time-series store over obs.Registry expositions, a
// federation scraper that pulls every replica's /metrics in the router
// role, and a declarative SLO engine running multi-window burn-rate
// alerts over the stored series.
//
// The package is noclock-compliant: it never reads the system clock.
// Every ingest and evaluation takes an explicit time or calls an
// injected obs.Clock, and the background poller consumes a tick channel
// its caller owns — cmd/srdaserve holds the time.Ticker, tests feed
// hand-rolled ticks under a frozen clock, and everything in between is
// deterministic.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"srda/internal/obs"
)

// Point is one stored observation.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// SeriesInfo is the read-side view of one stored series: identity plus
// its retained points oldest-first.
type SeriesInfo struct {
	Key    string          `json:"key"` // canonical name{labels} identity
	Name   string          `json:"name"`
	Labels []obs.PromLabel `json:"labels,omitempty"`
	Type   string          `json:"type"`
	Points []Point         `json:"points"`
}

// series is one ring of points.  The ring is fixed at store creation so
// memory is bounded: capacity × series, independent of uptime.
type series struct {
	name   string
	labels []obs.PromLabel
	typ    string
	ring   []Point
	next   int
	full   bool
}

func (s *series) push(p Point) {
	s.ring[s.next] = p
	s.next++
	if s.next == len(s.ring) {
		s.next = 0
		s.full = true
	}
}

// points returns the retained points oldest-first.
func (s *series) points() []Point {
	if !s.full {
		return append([]Point(nil), s.ring[:s.next]...)
	}
	out := make([]Point, 0, len(s.ring))
	out = append(out, s.ring[s.next:]...)
	out = append(out, s.ring[:s.next]...)
	return out
}

// Store is a bounded in-process time-series store.  Series appear on
// first ingest and are never dropped (the fleet's series set is small
// and stable); each keeps a fixed ring of points.  Safe for concurrent
// use.
type Store struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*series
	order    []string // first-ingest order, the deterministic iteration order
}

// DefaultPointsPerSeries retains 12 hours at a 15-second sample
// interval — enough history for the slow 6-hour burn-rate window with
// headroom.
const DefaultPointsPerSeries = 2880

// NewStore creates a store retaining pointsPerSeries points per series
// (DefaultPointsPerSeries when <= 0).
func NewStore(pointsPerSeries int) *Store {
	if pointsPerSeries <= 0 {
		pointsPerSeries = DefaultPointsPerSeries
	}
	return &Store{capacity: pointsPerSeries, series: make(map[string]*series)}
}

// Ingest records one sample per series from parsed exposition families,
// all stamped at now.  Extra labels (the federation layer's replica
// tag) are appended by the caller before ingest.
func (st *Store) Ingest(now time.Time, fams []obs.PromFamily) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, f := range fams {
		for _, smp := range f.Samples {
			key := obs.CanonicalSeriesKey(smp.Name, smp.Labels)
			sr, ok := st.series[key]
			if !ok {
				sr = &series{
					name:   smp.Name,
					labels: append([]obs.PromLabel(nil), smp.Labels...),
					typ:    f.Type,
					ring:   make([]Point, st.capacity),
				}
				st.series[key] = sr
				st.order = append(st.order, key)
			}
			sr.push(Point{T: now, V: smp.Value})
		}
	}
}

// SampleRegistry renders reg's exposition, parses it back through the
// shared grammar, and ingests one point per series at now.  Parsing our
// own writer is deliberate: the sampler exercises exactly the code path
// the federation scraper uses on remote replicas.
func (st *Store) SampleRegistry(now time.Time, regs ...*obs.Registry) error {
	var sb strings.Builder
	for _, reg := range regs {
		if reg == nil {
			continue
		}
		reg.WritePrometheus(&sb)
	}
	fams, err := obs.ParsePrometheus([]byte(sb.String()))
	if err != nil {
		return fmt.Errorf("telemetry: sampling registry: %w", err)
	}
	st.Ingest(now, fams)
	return nil
}

// Snapshot returns every series in first-ingest order.
func (st *Store) Snapshot() []SeriesInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]SeriesInfo, 0, len(st.order))
	for _, key := range st.order {
		out = append(out, st.viewLocked(key))
	}
	return out
}

// Query returns every series of one metric family name, sorted by
// canonical key so the answer is stable regardless of ingest order.
func (st *Store) Query(metric string) []SeriesInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	var keys []string
	for _, key := range st.order {
		if st.series[key].name == metric {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	out := make([]SeriesInfo, 0, len(keys))
	for _, key := range keys {
		out = append(out, st.viewLocked(key))
	}
	return out
}

// SeriesCount returns how many series the store holds.
func (st *Store) SeriesCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.series)
}

func (st *Store) viewLocked(key string) SeriesInfo {
	sr := st.series[key]
	return SeriesInfo{Key: key, Name: sr.name, Labels: sr.labels, Type: sr.typ, Points: sr.points()}
}

// Label returns the value of the named label on a series view ("" when
// absent).
func (si SeriesInfo) Label(name string) string {
	for _, l := range si.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Latest returns the newest point ({} , false when the series is empty).
func (si SeriesInfo) Latest() (Point, bool) {
	if len(si.Points) == 0 {
		return Point{}, false
	}
	return si.Points[len(si.Points)-1], true
}

// IncreaseOver computes a counter's increase across the window
// (from, to]: the sum of positive deltas between consecutive retained
// points inside the window, which rides through counter resets (a
// restarted replica re-starts at zero; the negative step is dropped
// rather than subtracted).  The point at-or-before `from` seeds the
// baseline so a window that starts mid-history doesn't count history
// before it.
func IncreaseOver(points []Point, from, to time.Time) float64 {
	var sum float64
	havePrev := false
	var prev float64
	for _, p := range points {
		if p.T.After(to) {
			break
		}
		if !p.T.After(from) {
			// Still at or before the window start: slide the baseline.
			prev, havePrev = p.V, true
			continue
		}
		if havePrev {
			if d := p.V - prev; d > 0 {
				sum += d
			}
		}
		prev, havePrev = p.V, true
	}
	return sum
}

// RateOver is IncreaseOver divided by the window length in seconds (0
// on a degenerate window).
func RateOver(points []Point, from, to time.Time) float64 {
	secs := to.Sub(from).Seconds()
	if secs <= 0 {
		return 0
	}
	return IncreaseOver(points, from, to) / secs
}

// FractionOver returns the fraction of points inside (from, to] whose
// value exceeds threshold, and how many points the window held.  NaN
// values never count as over.
func FractionOver(points []Point, threshold float64, from, to time.Time) (float64, int) {
	var n, over int
	for _, p := range points {
		if !p.T.After(from) || p.T.After(to) {
			continue
		}
		n++
		if p.V > threshold {
			over++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(over) / float64(n), n
}

// StartPoller spawns the sampling goroutine: fn runs for every tick
// until ticks is closed, then done closes.  The caller owns the tick
// source — a time.Ticker in production, a hand-fed channel in tests —
// so this package never touches the wall clock.
func StartPoller(ticks <-chan time.Time, fn func(time.Time)) (done <-chan struct{}) {
	ch := make(chan struct{})
	go func() {
		defer close(ch)
		for t := range ticks {
			fn(t)
		}
	}()
	return ch
}
