package telemetry

// Declarative SLOs with multi-window burn-rate alerting (the Google SRE
// workbook recipe): an objective defines an error budget, a burn rate
// says how fast the budget is being spent relative to "exactly spend it
// over the SLO period", and an alert fires when BOTH a short and a long
// window burn faster than the window's threshold — the short window
// makes alerts responsive, the long window keeps a brief blip from
// paging.  Two windows by default: fast (5m/1h, burn 14.4 — budget gone
// in ~2 days) and slow (30m/6h, burn 6 — budget gone in ~5 days).

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"srda/internal/obs"
)

// SLOSchema is the config schema identifier; ValidateSLOConfig rejects
// configs claiming any other version.
const SLOSchema = "srda-slo/v1"

// Objective kinds.
const (
	// KindAvailability burns budget on the 5xx fraction of a counter
	// family with a status-code label.
	KindAvailability = "availability"
	// KindLatencyP99 burns budget on the fraction of recent p99 gauge
	// samples above a latency threshold.
	KindLatencyP99 = "latency_p99"
)

// Objective is one service-level objective.
type Objective struct {
	// Name labels the objective in alerts and metrics.
	Name string `json:"name"`
	// Kind is KindAvailability or KindLatencyP99.
	Kind string `json:"kind"`
	// Metric is the metric family the objective reads: a counter with a
	// status-code label for availability, a latency gauge (seconds) for
	// latency_p99.
	Metric string `json:"metric"`
	// Target is the objective itself in (0, 1), e.g. 0.999; the error
	// budget is 1 − Target.
	Target float64 `json:"target"`
	// ThresholdSeconds is the latency bound for latency_p99 objectives.
	ThresholdSeconds float64 `json:"threshold_seconds,omitempty"`
	// CodeLabel is the status-code label on availability metrics
	// (default "code"); values starting with "5" are errors.
	CodeLabel string `json:"code_label,omitempty"`
	// PendingForSeconds is how long the burn condition must hold before
	// a pending alert fires (default 60).
	PendingForSeconds float64 `json:"pending_for_seconds,omitempty"`
}

// BurnWindow is one multi-window burn-rate rule.
type BurnWindow struct {
	Name         string  `json:"name"`
	ShortSeconds float64 `json:"short_seconds"`
	LongSeconds  float64 `json:"long_seconds"`
	// Burn is the firing threshold: both windows must burn budget at
	// least this many times faster than the sustainable rate.
	Burn float64 `json:"burn"`
}

// SLOConfig is the -slo-config document.
type SLOConfig struct {
	Schema     string       `json:"schema"`
	Objectives []Objective  `json:"objectives"`
	Windows    []BurnWindow `json:"windows,omitempty"`
}

// DefaultBurnWindows returns the standard two-window ladder.
func DefaultBurnWindows() []BurnWindow {
	return []BurnWindow{
		{Name: "fast", ShortSeconds: 300, LongSeconds: 3600, Burn: 14.4},
		{Name: "slow", ShortSeconds: 1800, LongSeconds: 21600, Burn: 6},
	}
}

// ValidateSLOConfig parses and validates an SLO config document,
// holding it to the same contract flight bundles get: unknown fields,
// a wrong schema string, or out-of-range values are errors, and
// defaults (windows, code label, pending-for) are filled in.
func ValidateSLOConfig(data []byte) (*SLOConfig, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var cfg SLOConfig
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("telemetry: SLO config is not valid JSON for the schema: %w", err)
	}
	if cfg.Schema != SLOSchema {
		return nil, fmt.Errorf("telemetry: SLO config schema %q, want %q", cfg.Schema, SLOSchema)
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("telemetry: SLO config declares no objectives")
	}
	seen := map[string]bool{}
	for i := range cfg.Objectives {
		o := &cfg.Objectives[i]
		if o.Name == "" {
			return nil, fmt.Errorf("telemetry: objective %d has no name", i)
		}
		if seen[o.Name] {
			return nil, fmt.Errorf("telemetry: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		if o.Metric == "" {
			return nil, fmt.Errorf("telemetry: objective %q has no metric", o.Name)
		}
		if !(o.Target > 0 && o.Target < 1) {
			return nil, fmt.Errorf("telemetry: objective %q target %v outside (0, 1)", o.Name, o.Target)
		}
		switch o.Kind {
		case KindAvailability:
			if o.CodeLabel == "" {
				o.CodeLabel = "code"
			}
		case KindLatencyP99:
			if o.ThresholdSeconds <= 0 {
				return nil, fmt.Errorf("telemetry: latency objective %q needs threshold_seconds > 0", o.Name)
			}
		default:
			return nil, fmt.Errorf("telemetry: objective %q has unknown kind %q", o.Name, o.Kind)
		}
		if o.PendingForSeconds <= 0 {
			o.PendingForSeconds = 60
		}
	}
	if len(cfg.Windows) == 0 {
		cfg.Windows = DefaultBurnWindows()
	}
	for i, w := range cfg.Windows {
		if w.Name == "" {
			return nil, fmt.Errorf("telemetry: window %d has no name", i)
		}
		if w.ShortSeconds <= 0 || w.LongSeconds <= w.ShortSeconds {
			return nil, fmt.Errorf("telemetry: window %q needs 0 < short < long", w.Name)
		}
		if w.Burn <= 0 {
			return nil, fmt.Errorf("telemetry: window %q needs burn > 0", w.Name)
		}
	}
	return &cfg, nil
}

// Alert states.
const (
	StateInactive = "inactive"
	StatePending  = "pending"
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Alert is the public state of one (objective, window) pair.
type Alert struct {
	Objective   string    `json:"objective"`
	Window      string    `json:"window"`
	State       string    `json:"state"`
	Since       time.Time `json:"since"`              // entered current state
	Burn        float64   `json:"burn"`               // short-window burn at last eval
	LongBurn    float64   `json:"long_burn"`          // long-window burn at last eval
	Threshold   float64   `json:"threshold"`          // window's firing threshold
	FiredAt     time.Time `json:"fired_at,omitempty"` // last transition to firing
	Transitions int       `json:"transitions"`        // lifetime state changes
}

// sloMetrics is the srdaslo_* instrument set.
type sloMetrics struct {
	evals       *obs.Counter
	transitions *obs.CounterVec // objective, window, to
}

// SLOEngine evaluates a config against a Store and runs the alert
// state machine.  Evaluate is explicit-time, so tests drive the whole
// lifecycle under a frozen clock.
type SLOEngine struct {
	cfg    *SLOConfig
	store  *Store
	clock  obs.Clock
	flight *obs.FlightRecorder
	logger *obs.Logger

	mu     sync.Mutex
	alerts map[string]*Alert // "objective/window" -> state
	keys   []string          // sorted, fixed at construction
	mx     *sloMetrics
}

// SLOEngineOptions configures an engine; Registry receives the
// srdaslo_* instruments, Flight the slo_burn trigger.
type SLOEngineOptions struct {
	Clock    obs.Clock
	Registry *obs.Registry
	Flight   *obs.FlightRecorder
	Logger   *obs.Logger
}

// NewSLOEngine builds an engine over a validated config.
func NewSLOEngine(cfg *SLOConfig, store *Store, opts SLOEngineOptions) *SLOEngine {
	e := &SLOEngine{
		cfg:    cfg,
		store:  store,
		clock:  opts.Clock,
		flight: opts.Flight,
		logger: opts.Logger,
		alerts: make(map[string]*Alert),
	}
	if e.clock == nil {
		e.clock = obs.SystemClock()
	}
	for _, o := range cfg.Objectives {
		for _, w := range cfg.Windows {
			key := o.Name + "/" + w.Name
			e.alerts[key] = &Alert{Objective: o.Name, Window: w.Name, State: StateInactive, Threshold: w.Burn}
			e.keys = append(e.keys, key)
		}
	}
	sort.Strings(e.keys)
	if opts.Registry != nil {
		e.mx = &sloMetrics{
			evals: opts.Registry.NewCounter("srdaslo_evaluations_total",
				"SLO evaluation passes."),
			transitions: opts.Registry.NewCounterVec("srdaslo_transitions_total",
				"Alert state-machine transitions.", "objective", "window", "to"),
		}
		opts.Registry.NewGaugeFunc("srdaslo_alerts_firing",
			"Alerts currently firing.", func() int64 { return e.countState(StateFiring) })
		opts.Registry.NewGaugeFunc("srdaslo_alerts_pending",
			"Alerts currently pending.", func() int64 { return e.countState(StatePending) })
		opts.Registry.NewGaugeVecFunc("srdaslo_burn_rate",
			"Short-window burn rate per objective and window.",
			[]string{"objective", "window"}, e.burnSamples)
	}
	return e
}

func (e *SLOEngine) countState(state string) int64 {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var n int64
	//srdalint:ignore maprange counting states; the sum is order-insensitive
	for _, a := range e.alerts {
		if a.State == state {
			n++
		}
	}
	return n
}

func (e *SLOEngine) burnSamples() []obs.GaugeSample {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]obs.GaugeSample, 0, len(e.keys))
	for _, key := range e.keys {
		a := e.alerts[key]
		out = append(out, obs.GaugeSample{Labels: []string{a.Objective, a.Window}, Value: a.Burn})
	}
	return out
}

// Alerts returns every alert sorted by objective then window.
func (e *SLOEngine) Alerts() []Alert {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.keys))
	for _, key := range e.keys {
		out = append(out, *e.alerts[key])
	}
	return out
}

// Handler serves the alert table as JSON (the /debug/alerts endpoint).
func (e *SLOEngine) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		alerts := e.Alerts()
		if alerts == nil {
			alerts = []Alert{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Alerts []Alert `json:"alerts"`
		}{alerts})
	}
}

// Evaluate runs one pass: compute each objective's burn over every
// window pair at now, then step each alert's state machine.
func (e *SLOEngine) Evaluate(now time.Time) {
	if e == nil {
		return
	}
	if e.mx != nil {
		e.mx.evals.Inc()
	}
	for _, o := range e.cfg.Objectives {
		for _, w := range e.cfg.Windows {
			short := e.burnRate(o, time.Duration(w.ShortSeconds*float64(time.Second)), now)
			long := e.burnRate(o, time.Duration(w.LongSeconds*float64(time.Second)), now)
			e.step(o, w, short, long, now)
		}
	}
}

// burnRate computes how fast the objective's error budget is burning
// over the trailing window: observed bad fraction divided by the
// budget (1 − target).  Burn 1 means "spending the budget exactly at
// the sustainable rate"; 14.4 means the whole budget would be gone in
// 1/14.4 of the SLO period.
func (e *SLOEngine) burnRate(o Objective, window time.Duration, now time.Time) float64 {
	from := now.Add(-window)
	var badFrac float64
	switch o.Kind {
	case KindAvailability:
		var total, bad float64
		for _, si := range e.store.Query(o.Metric) {
			inc := IncreaseOver(si.Points, from, now)
			total += inc
			if code := si.Label(o.CodeLabel); strings.HasPrefix(code, "5") {
				bad += inc
			}
		}
		if total <= 0 {
			return 0 // no traffic burns no budget
		}
		badFrac = bad / total
	case KindLatencyP99:
		// Worst offending series wins: one slow replica is a breach
		// even when the fleet average looks fine.
		for _, si := range e.store.Query(o.Metric) {
			frac, n := FractionOver(si.Points, o.ThresholdSeconds, from, now)
			if n > 0 && frac > badFrac {
				badFrac = frac
			}
		}
	}
	budget := 1 - o.Target
	if budget <= 0 {
		return 0
	}
	burn := badFrac / budget
	if math.IsNaN(burn) || math.IsInf(burn, 0) {
		return 0
	}
	return burn
}

// step advances one alert's state machine.
func (e *SLOEngine) step(o Objective, w BurnWindow, short, long float64, now time.Time) {
	cond := short >= w.Burn && long >= w.Burn
	pendingFor := time.Duration(o.PendingForSeconds * float64(time.Second))

	e.mu.Lock()
	a := e.alerts[o.Name+"/"+w.Name]
	a.Burn, a.LongBurn = short, long
	var fired bool
	switch a.State {
	case StateInactive, StateResolved:
		if cond {
			e.transitionLocked(a, StatePending, now)
		}
	case StatePending:
		if !cond {
			e.transitionLocked(a, StateInactive, now)
		} else if now.Sub(a.Since) >= pendingFor {
			e.transitionLocked(a, StateFiring, now)
			a.FiredAt = now
			fired = true
		}
	case StateFiring:
		if !cond {
			e.transitionLocked(a, StateResolved, now)
		}
	}
	e.mu.Unlock()

	if fired {
		e.logger.Warn("SLO burn-rate alert firing",
			"objective", o.Name, "window", w.Name,
			"burn", fmt.Sprintf("%.2f", short), "threshold", fmt.Sprintf("%.2f", w.Burn))
		e.flight.NoteSLOBurn(short, w.Burn)
	}
}

// transitionLocked moves an alert to a new state; caller holds e.mu.
func (e *SLOEngine) transitionLocked(a *Alert, state string, now time.Time) {
	a.State = state
	a.Since = now
	a.Transitions++
	if e.mx != nil {
		e.mx.transitions.With(a.Objective, a.Window, state).Inc()
	}
}
