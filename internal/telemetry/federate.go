package telemetry

// Federation: the router role scrapes every replica's /metrics through
// the shared text grammar, tags each sample with a replica label,
// ingests the result into one cluster store, and merges the replicas'
// CKMS sketch snapshots into cluster-level quantiles.  The merged view
// is re-exposed two ways: /cluster/metrics (deterministic Prometheus
// text — families sorted by name, samples by canonical key) and
// /cluster/snapshot (the JSON document srdareport top renders).

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"srda/internal/obs"
)

// Fleet-view metric contract: the worker series the replica table in
// /cluster/snapshot is computed from.  A worker that renames these
// still federates fine — the table just loses the derived columns.
const (
	fleetRequestsMetric = "srdaserve_requests_total"
	fleetP99Metric      = "srdaserve_request_latency_p99"
	fleetQueueMetric    = "srdaserve_queue_depth"
	// ReplicaLabel tags every federated sample with its source replica.
	ReplicaLabel = "replica"
)

// Target is one scrape target: a replica's exposition plus (optionally)
// its quantile-sketch snapshots.
type Target struct {
	// Replica names the target; it becomes the replica label value.
	Replica string
	// Fetch returns the /metrics exposition bytes.
	Fetch func(ctx context.Context) ([]byte, error)
	// Sketches returns the replica's sketch snapshots keyed by metric
	// base name; nil means the target does not export sketches.
	Sketches func(ctx context.Context) (map[string]obs.SketchSnapshot, error)
}

// RegistryTarget adapts in-process registries (the co-located "all"
// role): Fetch renders them directly, no HTTP round trip.
func RegistryTarget(replica string, sketches func() map[string]obs.SketchSnapshot, regs ...*obs.Registry) Target {
	t := Target{
		Replica: replica,
		Fetch: func(context.Context) ([]byte, error) {
			var sb strings.Builder
			for _, reg := range regs {
				if reg != nil {
					reg.WritePrometheus(&sb)
				}
			}
			return []byte(sb.String()), nil
		},
	}
	if sketches != nil {
		t.Sketches = func(context.Context) (map[string]obs.SketchSnapshot, error) {
			return sketches(), nil
		}
	}
	return t
}

// SketchClient fetches sketch snapshots over HTTP; *serve.Client
// satisfies it.
type SketchClient interface {
	Sketches(ctx context.Context) (map[string]obs.SketchSnapshot, error)
}

// MetricsClient fetches a /metrics exposition; *serve.Client satisfies
// it.
type MetricsClient interface {
	Metrics(ctx context.Context) (string, error)
}

// ClientTarget adapts a typed worker client (serve.Client or anything
// implementing the two fetch interfaces) into a scrape target.
func ClientTarget(replica string, mc MetricsClient, sc SketchClient) Target {
	t := Target{
		Replica: replica,
		Fetch: func(ctx context.Context) ([]byte, error) {
			text, err := mc.Metrics(ctx)
			return []byte(text), err
		},
	}
	if sc != nil {
		t.Sketches = sc.Sketches
	}
	return t
}

// replicaScrape is the per-target scrape status.
type replicaScrape struct {
	up         bool
	lastScrape time.Time
	lastErr    string
}

// FederatorOptions configures a Federator.
type FederatorOptions struct {
	// Clock stamps scrapes and snapshot documents; obs.SystemClock()
	// when nil.  Tests inject a frozen clock for byte-determinism.
	Clock obs.Clock
	// PointsPerSeries sizes the cluster store's rings
	// (DefaultPointsPerSeries when 0).
	PointsPerSeries int
	// RateWindow is the trailing window the replica table's request and
	// error rates are computed over (default 60s).
	RateWindow time.Duration
	// Logger receives scrape failures.  Nil disables.
	Logger *obs.Logger
}

// Federator scrapes a fixed target set into one cluster store.
type Federator struct {
	opts  FederatorOptions
	clock obs.Clock
	store *Store

	mu       sync.Mutex
	targets  []Target
	status   map[string]*replicaScrape
	sketches map[string]map[string]obs.SketchSnapshot // replica -> metric -> snapshot
	scrapes  int64
	errs     int64
	slo      *SLOEngine
}

// NewFederator builds a federator over the given targets.
func NewFederator(targets []Target, opts FederatorOptions) *Federator {
	clock := opts.Clock
	if clock == nil {
		clock = obs.SystemClock()
	}
	if opts.RateWindow <= 0 {
		opts.RateWindow = time.Minute
	}
	f := &Federator{
		opts:     opts,
		clock:    clock,
		store:    NewStore(opts.PointsPerSeries),
		targets:  append([]Target(nil), targets...),
		status:   make(map[string]*replicaScrape, len(targets)),
		sketches: make(map[string]map[string]obs.SketchSnapshot),
	}
	for _, t := range targets {
		f.status[t.Replica] = &replicaScrape{}
	}
	return f
}

// Store returns the cluster store the federator ingests into — the SLO
// engine in the router role evaluates against it.
func (f *Federator) Store() *Store { return f.store }

// AttachSLO links an engine so /cluster/snapshot includes its alerts
// and Scrape evaluates it after each ingest pass.
func (f *Federator) AttachSLO(e *SLOEngine) {
	f.mu.Lock()
	f.slo = e
	f.mu.Unlock()
}

// Scrape pulls every target once at now: fetch, parse, tag with the
// replica label, ingest; then fetch sketch snapshots; then (with an
// attached SLO engine) evaluate alerts against the updated store.  A
// failing target marks its replica down and keeps its stale series —
// gaps, not zeros.
func (f *Federator) Scrape(ctx context.Context, now time.Time) {
	f.mu.Lock()
	targets := append([]Target(nil), f.targets...)
	f.scrapes++
	slo := f.slo
	f.mu.Unlock()

	for _, t := range targets {
		err := f.scrapeOne(ctx, t, now)
		f.mu.Lock()
		st := f.status[t.Replica]
		st.lastScrape = now
		if err != nil {
			st.up = false
			st.lastErr = err.Error()
			f.errs++
		} else {
			st.up = true
			st.lastErr = ""
		}
		f.mu.Unlock()
		if err != nil {
			f.opts.Logger.Warn("federation scrape failed", "replica", t.Replica, "err", err.Error())
		}
	}
	slo.Evaluate(now)
}

func (f *Federator) scrapeOne(ctx context.Context, t Target, now time.Time) error {
	data, err := t.Fetch(ctx)
	if err != nil {
		return fmt.Errorf("fetching metrics: %w", err)
	}
	fams, err := obs.ParsePrometheus(data)
	if err != nil {
		return fmt.Errorf("parsing metrics: %w", err)
	}
	tagged := make([]obs.PromFamily, len(fams))
	for i, fam := range fams {
		tagged[i] = obs.PromFamily{Name: fam.Name, Help: fam.Help, Type: fam.Type}
		tagged[i].Samples = make([]obs.PromSample, len(fam.Samples))
		for j, smp := range fam.Samples {
			labels := make([]obs.PromLabel, 0, len(smp.Labels)+1)
			for _, l := range smp.Labels {
				// A scraped series may already carry a replica label (the
				// router's own srdaroute_* set does); rename it the way
				// Prometheus federation does so the target tag never
				// collides into a duplicate label name.
				if l.Name == ReplicaLabel {
					l.Name = "exported_" + ReplicaLabel
				}
				labels = append(labels, l)
			}
			labels = append(labels, obs.PromLabel{Name: ReplicaLabel, Value: t.Replica})
			tagged[i].Samples[j] = obs.PromSample{Name: smp.Name, Labels: labels, Value: smp.Value}
		}
	}
	f.store.Ingest(now, tagged)

	if t.Sketches != nil {
		snaps, err := t.Sketches(ctx)
		if err != nil {
			return fmt.Errorf("fetching sketches: %w", err)
		}
		f.mu.Lock()
		f.sketches[t.Replica] = snaps
		f.mu.Unlock()
	}
	return nil
}

// mergedSketches merges the latest per-replica snapshots per metric,
// metric names sorted.
func (f *Federator) mergedSketches() []ClusterQuantile {
	f.mu.Lock()
	byMetric := make(map[string][]obs.SketchSnapshot)
	for _, replica := range sortedKeys(f.sketches) {
		//srdalint:ignore maprange building another map; output order comes from the sortedKeys pass below
		for metric, snap := range f.sketches[replica] {
			byMetric[metric] = append(byMetric[metric], snap)
		}
	}
	f.mu.Unlock()
	out := make([]ClusterQuantile, 0, len(byMetric))
	for _, metric := range sortedKeys(byMetric) {
		merged := obs.MergeSketches(byMetric[metric]...)
		if merged.Count() == 0 {
			continue
		}
		out = append(out, ClusterQuantile{
			Metric: metric,
			Count:  merged.Count(),
			P50:    nanToZero(merged.Query(0.5)),
			P95:    nanToZero(merged.Query(0.95)),
			P99:    nanToZero(merged.Query(0.99)),
		})
	}
	return out
}

// WriteClusterMetrics renders the deterministic cluster exposition:
// federation meta-series, merged cluster quantiles, then the latest
// value of every federated series — families sorted by name, samples
// by canonical key, so two routers scraping the same fleet at the same
// frozen instant produce identical bytes (the golden test's contract).
func (f *Federator) WriteClusterMetrics(w io.Writer) {
	f.mu.Lock()
	replicas := sortedKeys(f.status)
	scrapes, errs := f.scrapes, f.errs
	type repStatus struct {
		name string
		up   bool
	}
	ups := make([]repStatus, 0, len(replicas))
	for _, name := range replicas {
		ups = append(ups, repStatus{name: name, up: f.status[name].up})
	}
	f.mu.Unlock()

	fmt.Fprintf(w, "# HELP srdafed_replicas Replicas in the federation target set.\n# TYPE srdafed_replicas gauge\nsrdafed_replicas %d\n", len(ups))
	fmt.Fprintf(w, "# HELP srdafed_scrapes_total Federation scrape passes.\n# TYPE srdafed_scrapes_total counter\nsrdafed_scrapes_total %d\n", scrapes)
	fmt.Fprintf(w, "# HELP srdafed_scrape_errors_total Failed target scrapes.\n# TYPE srdafed_scrape_errors_total counter\nsrdafed_scrape_errors_total %d\n", errs)
	fmt.Fprintf(w, "# HELP srdafed_replica_up Whether the last scrape of the replica succeeded.\n# TYPE srdafed_replica_up gauge\n")
	for _, r := range ups {
		up := 0
		if r.up {
			up = 1
		}
		fmt.Fprintf(w, "srdafed_replica_up{%s=\"%s\"} %d\n", ReplicaLabel, obs.EscapeLabelValue(r.name), up)
	}

	quants := f.mergedSketches()
	if len(quants) > 0 {
		fmt.Fprintf(w, "# HELP srdacluster_quantile Cluster-level quantiles from merged per-replica CKMS sketches.\n# TYPE srdacluster_quantile gauge\n")
		for _, q := range quants {
			for _, pq := range []struct {
				q string
				v float64
			}{{"0.5", q.P50}, {"0.95", q.P95}, {"0.99", q.P99}} {
				fmt.Fprintf(w, "srdacluster_quantile{metric=\"%s\",quantile=\"%s\"} %s\n",
					obs.EscapeLabelValue(q.Metric), pq.q, formatValue(pq.v))
			}
		}
		fmt.Fprintf(w, "# HELP srdacluster_quantile_count Observations behind each merged cluster sketch.\n# TYPE srdacluster_quantile_count gauge\n")
		for _, q := range quants {
			fmt.Fprintf(w, "srdacluster_quantile_count{metric=\"%s\"} %d\n", obs.EscapeLabelValue(q.Metric), q.Count)
		}
	}

	// Federated series: latest value per series, grouped by family.
	type famOut struct {
		typ   string
		lines []string
	}
	fams := make(map[string]*famOut)
	for _, si := range f.store.Snapshot() {
		latest, ok := si.Latest()
		if !ok {
			continue
		}
		fo, ok := fams[si.Name]
		if !ok {
			fo = &famOut{typ: si.Type}
			fams[si.Name] = fo
		}
		fo.lines = append(fo.lines, si.Key+" "+formatValue(latest.V))
	}
	for _, name := range sortedKeys(fams) {
		fo := fams[name]
		fmt.Fprintf(w, "# TYPE %s %s\n", name, fo.typ)
		sort.Strings(fo.lines)
		for _, line := range fo.lines {
			fmt.Fprintln(w, line)
		}
	}
}

// MetricsHandler serves /cluster/metrics.
func (f *Federator) MetricsHandler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", obs.PromContentType)
		f.WriteClusterMetrics(w)
	}
}

// formatValue renders a sample value deterministically; integral
// values drop the fraction the way obs's own writer does.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func nanToZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
