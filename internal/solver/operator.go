// Package solver implements the iterative least-squares machinery behind
// SRDA's linear-time path: LSQR (Paige & Saunders 1982) with Tikhonov
// damping, plus conjugate gradients on the normal equations for
// comparison.  Solvers operate on an abstract Operator so dense matrices,
// CSR sparse matrices, and the paper's "append a 1 to every sample"
// intercept augmentation all share one code path.
package solver

import (
	"sync"

	"srda/internal/mat"
	"srda/internal/sparse"
)

// Operator is a linear map A: R^n -> R^m exposed through its action and
// the action of its adjoint.  Implementations must treat x as read-only
// and may use dst (when non-nil and correctly sized) as the output buffer.
type Operator interface {
	// Dims returns (m, n): the output and input dimensions.
	Dims() (m, n int)
	// Apply computes A*x into a vector of length m.
	Apply(x, dst []float64) []float64
	// ApplyT computes Aᵀ*x into a vector of length n.
	ApplyT(x, dst []float64) []float64
}

// DenseOp adapts a *mat.Dense to the Operator interface.  Workers bounds
// the kernel parallelism of each product (<= 0 means GOMAXPROCS, 1 forces
// sequential); any setting produces bitwise-identical results, so solves
// are reproducible across machines regardless of core count.
type DenseOp struct {
	A       *mat.Dense
	Workers int
}

// Dims implements Operator.
func (o DenseOp) Dims() (int, int) { return o.A.Rows, o.A.Cols }

// Apply implements Operator.
func (o DenseOp) Apply(x, dst []float64) []float64 { return o.A.ParMulVec(o.Workers, x, dst) }

// ApplyT implements Operator.
func (o DenseOp) ApplyT(x, dst []float64) []float64 { return o.A.ParMulTVec(o.Workers, x, dst) }

// SparseOp adapts a *sparse.CSR to the Operator interface.  Workers has
// the same bitwise-safe semantics as on DenseOp.
type SparseOp struct {
	A       *sparse.CSR
	Workers int
}

// Dims implements Operator.
func (o SparseOp) Dims() (int, int) { return o.A.Rows, o.A.Cols }

// Apply implements Operator.
func (o SparseOp) Apply(x, dst []float64) []float64 { return o.A.ParMulVec(o.Workers, x, dst) }

// ApplyT implements Operator.
func (o SparseOp) ApplyT(x, dst []float64) []float64 { return o.A.ParMulTVec(o.Workers, x, dst) }

// AugmentedOp wraps an operator A as [A | 1]: every row gains a trailing
// constant-1 feature.  This is the paper's intercept-absorption trick
// (§III-B): ridge-regressing with the augmented operator fits aᵀx + b
// without ever centering the (possibly sparse) data, so sparsity is
// preserved.  The intercept coordinate is the last entry of the solution
// vector.
type AugmentedOp struct{ Inner Operator }

// Dims implements Operator: one extra input dimension for the intercept.
func (o AugmentedOp) Dims() (int, int) {
	m, n := o.Inner.Dims()
	return m, n + 1
}

// Apply implements Operator.
func (o AugmentedOp) Apply(x, dst []float64) []float64 {
	m, n := o.Inner.Dims()
	dst = o.Inner.Apply(x[:n], dst)
	b := x[n]
	if b != 0 { //srdalint:ignore floatcmp exact zero bias term skips the broadcast add bit-exactly
		for i := 0; i < m; i++ {
			dst[i] += b
		}
	}
	return dst
}

// ApplyT implements Operator.
func (o AugmentedOp) ApplyT(x, dst []float64) []float64 {
	m, n := o.Inner.Dims()
	if dst == nil {
		dst = make([]float64, n+1)
	}
	o.Inner.ApplyT(x, dst[:n])
	var s float64
	for i := 0; i < m; i++ {
		s += x[i]
	}
	dst[n] = s
	return dst
}

// CenteredOp wraps an operator as A - 1·μᵀ, i.e. the operator whose rows
// are the centered rows of A, without densifying A.  Used to run LDA-style
// computations on sparse data for comparison purposes.
type CenteredOp struct {
	Inner Operator
	Mu    []float64 // column means, length n
}

// Dims implements Operator.
func (o CenteredOp) Dims() (int, int) { return o.Inner.Dims() }

// Apply implements Operator.
func (o CenteredOp) Apply(x, dst []float64) []float64 {
	m, _ := o.Inner.Dims()
	dst = o.Inner.Apply(x, dst)
	var mux float64
	for j, v := range o.Mu {
		mux += v * x[j]
	}
	for i := 0; i < m; i++ {
		dst[i] -= mux
	}
	return dst
}

// ApplyT implements Operator.
func (o CenteredOp) ApplyT(x, dst []float64) []float64 {
	_, n := o.Inner.Dims()
	dst = o.Inner.ApplyT(x, dst)
	var sx float64
	for _, v := range x {
		sx += v
	}
	for j := 0; j < n; j++ {
		dst[j] -= sx * o.Mu[j]
	}
	return dst
}

// DiskOp adapts an out-of-core *sparse.DiskCSR to the Operator interface.
// The Operator contract has no error channel, so I/O failures are made
// sticky: the first error freezes the operator (subsequent products
// return zero vectors) and is reported by Err.  Callers run the solve,
// then check Err once.  Safe for the concurrent use the parallel
// response solver makes of it (the underlying reads go through ReadAt).
type DiskOp struct {
	A   *sparse.DiskCSR
	mu  sync.Mutex
	err error
}

// Dims implements Operator.
func (o *DiskOp) Dims() (int, int) { return o.A.Rows, o.A.Cols }

// Err returns the first I/O error encountered, if any.
func (o *DiskOp) Err() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.err
}

func (o *DiskOp) fail(err error) {
	o.mu.Lock()
	if o.err == nil {
		o.err = err
	}
	o.mu.Unlock()
}

// Apply implements Operator.
func (o *DiskOp) Apply(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, o.A.Rows)
	}
	if o.Err() != nil {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	out, err := o.A.MulVec(x, dst)
	if err != nil {
		o.fail(err)
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return out
}

// ApplyT implements Operator.
func (o *DiskOp) ApplyT(x, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, o.A.Cols)
	}
	if o.Err() != nil {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	out, err := o.A.MulTVec(x, dst)
	if err != nil {
		o.fail(err)
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	return out
}
