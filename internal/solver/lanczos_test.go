package solver

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/decomp"
	"srda/internal/mat"
)

// randSym builds a random symmetric matrix.
func randSym(rng *rand.Rand, n int) *mat.Dense {
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestLanczosMatchesDenseEig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 20, 60} {
		a := randSym(rng, n)
		k := 3
		if k > n {
			k = n
		}
		res, err := Lanczos(DenseSymOp{a}, k, 0, 0, 42)
		if err != nil {
			t.Fatal(err)
		}
		eig, err := decomp.NewSymEig(a)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < k; j++ {
			if math.Abs(res.Values[j]-eig.Values[j]) > 1e-7*(1+math.Abs(eig.Values[0])) {
				t.Fatalf("n=%d: eigenvalue %d: %v vs %v", n, j, res.Values[j], eig.Values[j])
			}
		}
	}
}

func TestLanczosEigenvectorsSatisfyDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 40
	a := randSym(rng, n)
	res, err := Lanczos(DenseSymOp{a}, 4, 0, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	v := make([]float64, n)
	for j := 0; j < 4; j++ {
		res.Vectors.ColCopy(j, v)
		av := a.MulVec(v, nil)
		var worst float64
		for i := range av {
			if d := math.Abs(av[i] - res.Values[j]*v[i]); d > worst {
				worst = d
			}
		}
		if worst > 1e-7*(1+math.Abs(res.Values[j])) {
			t.Fatalf("Av != λv for pair %d (residual %v)", j, worst)
		}
	}
	// orthonormality
	g := mat.MulTA(res.Vectors, res.Vectors)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-8 {
				t.Fatalf("Ritz vectors not orthonormal at (%d,%d): %v", i, j, g.At(i, j))
			}
		}
	}
}

func TestLanczosLowRankOperator(t *testing.T) {
	// Rank-2 PSD matrix: Lanczos must find both nonzero eigenvalues and
	// stop early on the invariant subspace.
	rng := rand.New(rand.NewSource(3))
	n := 30
	u := make([]float64, n)
	v := make([]float64, n)
	for i := range u {
		u[i] = rng.NormFloat64()
		v[i] = rng.NormFloat64()
	}
	a := mat.NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, 3*u[i]*u[j]+v[i]*v[j])
		}
	}
	res, err := Lanczos(DenseSymOp{a}, 4, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := decomp.NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(res.Values[j]-eig.Values[j]) > 1e-7*(1+eig.Values[0]) {
			t.Fatalf("eigenvalue %d: %v vs %v", j, res.Values[j], eig.Values[j])
		}
	}
}

func TestLanczosKClamping(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randSym(rng, 4)
	res, err := Lanczos(DenseSymOp{a}, 10, 0, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 4 {
		t.Fatalf("expected clamp to n=4, got %d", len(res.Values))
	}
	if _, err := Lanczos(DenseSymOp{a}, 0, 0, 0, 2); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestLanczosDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSym(rng, 25)
	r1, err := Lanczos(DenseSymOp{a}, 3, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Lanczos(DenseSymOp{a}, 3, 0, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(r1.Vectors, r2.Vectors, 0) {
		t.Fatal("same seed must give identical results")
	}
}

func TestLanczosDeflatedResolvesMultiplicity(t *testing.T) {
	// Matrix with a 3-fold eigenvalue 2 and the rest 0: block-diagonal of
	// three (1/m)J blocks scaled by 2.
	n := 12
	a := mat.NewDense(n, n)
	for b := 0; b < 3; b++ {
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				a.Set(b*4+i, b*4+j, 2.0/4)
			}
		}
	}
	res, err := LanczosDeflated(DenseSymOp{a}, 4, 1e-9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) < 3 {
		t.Fatalf("found only %d eigenpairs", len(res.Values))
	}
	for j := 0; j < 3; j++ {
		if math.Abs(res.Values[j]-2) > 1e-7 {
			t.Fatalf("eigenvalue %d = %v want 2", j, res.Values[j])
		}
	}
	if len(res.Values) > 3 && math.Abs(res.Values[3]) > 1e-7 {
		t.Fatalf("4th eigenvalue %v want 0", res.Values[3])
	}
	// orthonormal eigenvectors satisfying Av = λv
	v := make([]float64, n)
	for j := 0; j < 3; j++ {
		res.Vectors.ColCopy(j, v)
		av := a.MulVec(v, nil)
		for i := range av {
			if math.Abs(av[i]-2*v[i]) > 1e-7 {
				t.Fatalf("pair %d violates Av=2v", j)
			}
		}
	}
	g := mat.MulTA(res.Vectors, res.Vectors)
	for i := 0; i < g.Rows; i++ {
		for j := 0; j < g.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-7 {
				t.Fatal("deflated vectors not orthonormal")
			}
		}
	}
}

func TestLanczosDeflatedMatchesDenseEigGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randSym(rng, 35)
	res, err := LanczosDeflated(DenseSymOp{a}, 5, 1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	eig, err := decomp.NewSymEig(a)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 5 && j < len(res.Values); j++ {
		if math.Abs(res.Values[j]-eig.Values[j]) > 1e-6*(1+math.Abs(eig.Values[0])) {
			t.Fatalf("eigenvalue %d: %v vs %v", j, res.Values[j], eig.Values[j])
		}
	}
}
