package solver

import (
	"math"

	"srda/internal/blas"
	"srda/internal/mat"
)

// deflatedOp applies P(A + shift·I)P where P projects out the columns of
// found: previously converged eigenvectors collapse to eigenvalue 0 while
// the remaining spectrum moves to λ + shift > 0, cleanly separated.
type deflatedOp struct {
	inner SymOperator
	shift float64
	found *mat.Dense // n×r accepted eigenvectors, orthonormal
	tmp   []float64
}

func (o *deflatedOp) Dim() int { return o.inner.Dim() }

func (o *deflatedOp) project(x []float64) {
	if o.found == nil {
		return
	}
	for j := 0; j < o.found.Cols; j++ {
		col := o.found.ColCopy(j, o.tmp)
		blas.Axpy(-blas.Dot(col, x), col, x)
	}
}

func (o *deflatedOp) Apply(x, dst []float64) []float64 {
	n := o.Dim()
	if dst == nil {
		dst = make([]float64, n)
	}
	px := make([]float64, n)
	copy(px, x)
	o.project(px)
	o.inner.Apply(px, dst)
	blas.Axpy(o.shift, px, dst)
	o.project(dst)
	return dst
}

// LanczosDeflated computes the k algebraically largest eigenpairs of a
// symmetric operator, correctly resolving repeated eigenvalues — the case
// plain Lanczos cannot handle, and exactly the structure of the paper's
// class graph, whose eigenvalue 1 has multiplicity c (eq. 15).  It
// restarts Lanczos with fresh start vectors on a shifted, deflated
// operator until k pairs have converged (residual ‖Av−λv‖ ≤ tol·scale) or
// the restart budget is exhausted.
func LanczosDeflated(op SymOperator, k int, tol float64, seed int64) (*LanczosResult, error) {
	n := op.Dim()
	if k > n {
		k = n
	}
	if tol <= 0 {
		tol = 1e-8
	}

	// Estimate the spectral radius with one cheap Lanczos run so the shift
	// makes the whole spectrum positive.
	probe, err := Lanczos(op, 1, 2*k+20, 1e-6, seed)
	if err != nil {
		return nil, err
	}
	radius := math.Abs(probe.Values[0]) + 1
	shift := radius + 1

	found := mat.NewDense(n, 0)
	var values []float64
	dop := &deflatedOp{inner: op, shift: shift, tmp: make([]float64, n)}

	av := make([]float64, n)
	// Accepting exactly one pair per restart keeps discovery greedy in
	// eigenvalue order: after deflating the current largest direction, the
	// next restart's Lanczos converges to the largest *remaining* one —
	// including further copies of a repeated eigenvalue, which is the
	// whole point of the deflation.
	maxRestarts := 2*k + 6
	v := make([]float64, n)
	for restart := 0; restart < maxRestarts && len(values) < k; restart++ {
		dop.found = nil
		if found.Cols > 0 {
			dop.found = found
		}
		// Generous Krylov budget: graph spectra cluster near the top, and
		// full reorthogonalization keeps even long runs stable.
		innerIter := 240
		if n < innerIter {
			innerIter = n
		}
		res, err := Lanczos(dop, 2, innerIter, tol, seed+int64(restart)*7919+1)
		if err != nil {
			return nil, err
		}
		// The deflated subspace sits at eigenvalue 0 and the genuine
		// spectrum at λ+shift >= shift−radius >= 1, so a top Ritz value in
		// the deflated region means the start vector was unlucky — retry.
		if res.Values[0] < (shift-radius)/2 {
			continue
		}
		res.Vectors.ColCopy(0, v)
		// re-orthogonalize against accepted vectors and renormalize
		for c := 0; c < found.Cols; c++ {
			col := found.ColCopy(c, dop.tmp)
			blas.Axpy(-blas.Dot(col, v), col, v)
		}
		nrm := blas.Nrm2(v)
		if nrm < 1e-8 {
			continue
		}
		blas.Scal(1/nrm, v)
		// true residual on the original operator
		op.Apply(v, av)
		lam := blas.Dot(v, av)
		var resid float64
		for i := range av {
			d := av[i] - lam*v[i]
			resid += d * d
		}
		if math.Sqrt(resid) > tol*radius {
			continue
		}
		grown := mat.NewDense(n, found.Cols+1)
		for c := 0; c < found.Cols; c++ {
			grown.SetCol(c, found.ColCopy(c, dop.tmp))
		}
		grown.SetCol(found.Cols, v)
		found = grown
		values = append(values, lam)
	}
	if len(values) == 0 {
		return nil, ErrLanczosBreakdown
	}

	// Sort accepted pairs by descending eigenvalue.
	order := make([]int, len(values))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && values[order[j-1]] < values[order[j]] {
			order[j-1], order[j] = order[j], order[j-1]
			j--
		}
	}
	outVals := make([]float64, len(values))
	outVecs := mat.NewDense(n, len(values))
	for c, idx := range order {
		outVals[c] = values[idx]
		outVecs.SetCol(c, found.ColCopy(idx, dop.tmp))
	}
	return &LanczosResult{Values: outVals, Vectors: outVecs, Iters: 0}, nil
}
