package solver

import (
	"math"

	"srda/internal/blas"
)

// LSQRParams configures an LSQR run.  The zero value asks for sensible
// defaults via Defaults.
type LSQRParams struct {
	// Damp is the Tikhonov damping √α: LSQR minimizes
	// ‖A x − b‖² + Damp²‖x‖², matching eq. (14) of the paper with
	// α = Damp².
	Damp float64
	// MaxIter caps the number of iterations.  The paper reports 15–20
	// iterations suffice for its text workloads; Defaults uses 30.
	MaxIter int
	// ATol and BTol are the Paige–Saunders stopping tolerances on the
	// estimated relative residual quantities.  Defaults: 1e-8.
	ATol, BTol float64
	// RecordResiduals asks for the per-iteration damped residual-norm
	// estimates in LSQRResult.Residuals, one entry per iteration performed.
	// The estimates are byproducts of quantities the iteration already
	// maintains, so recording costs one append per iteration and never
	// perturbs the solve.
	RecordResiduals bool
}

// Defaults fills in zero fields.
func (p LSQRParams) Defaults() LSQRParams {
	if p.MaxIter <= 0 {
		p.MaxIter = 30
	}
	if p.ATol <= 0 {
		p.ATol = 1e-8
	}
	if p.BTol <= 0 {
		p.BTol = 1e-8
	}
	return p
}

// LSQRResult reports how a solve terminated.
type LSQRResult struct {
	X       []float64 // solution, length n
	Iters   int       // iterations performed
	ResNorm float64   // estimate of ‖[A; damp·I] x − [b; 0]‖
	Reason  string    // human-readable stopping reason
	// Residuals is the per-iteration ResNorm trajectory, populated only
	// when LSQRParams.RecordResiduals is set; Residuals[k] is the estimate
	// after iteration k+1, so len(Residuals) == Iters.
	Residuals []float64
}

// LSQR solves the (damped) least-squares problem
//
//	min ‖A x − b‖² + damp²‖x‖²
//
// using the Golub–Kahan bidiagonalization algorithm of Paige & Saunders
// (ACM TOMS 1982).  Each iteration costs exactly one Apply and one ApplyT
// — O(nnz) for sparse operators — which is the source of the paper's
// O(k·c·m·s) training cost.
func LSQR(op Operator, b []float64, params LSQRParams) LSQRResult {
	p := params.Defaults()
	m, n := op.Dims()
	if len(b) != m {
		panic("solver: LSQR rhs length mismatch")
	}

	x := make([]float64, n)
	u := make([]float64, m)
	v := make([]float64, n)
	w := make([]float64, n)
	tmpM := make([]float64, m)
	tmpN := make([]float64, n)

	copy(u, b)
	beta := blas.Nrm2(u)
	if beta == 0 { //srdalint:ignore floatcmp an exactly zero rhs has the exact solution x = 0
		return LSQRResult{X: x, Reason: "zero right-hand side"}
	}
	blas.Scal(1/beta, u)
	op.ApplyT(u, v)
	alpha := blas.Nrm2(v)
	if alpha == 0 { //srdalint:ignore floatcmp exactly zero Atb makes x = 0 optimal
		return LSQRResult{X: x, Reason: "Aᵀb = 0: x = 0 is optimal"}
	}
	blas.Scal(1/alpha, v)
	copy(w, v)

	phiBar := beta
	rhoBar := alpha
	bnorm := beta
	var ddnorm, resNorm, res2 float64
	anormEst := 0.0
	var residuals []float64
	if p.RecordResiduals {
		residuals = make([]float64, 0, p.MaxIter)
	}

	for iter := 1; iter <= p.MaxIter; iter++ {
		// Bidiagonalization step: β u = A v − α u ; α v = Aᵀ u − β v.
		op.Apply(v, tmpM)
		for i := range u {
			u[i] = tmpM[i] - alpha*u[i]
		}
		beta = blas.Nrm2(u)
		if beta > 0 {
			blas.Scal(1/beta, u)
		}
		anormEst = math.Sqrt(anormEst*anormEst + alpha*alpha + beta*beta + p.Damp*p.Damp)

		op.ApplyT(u, tmpN)
		for i := range v {
			v[i] = tmpN[i] - beta*v[i]
		}
		alpha = blas.Nrm2(v)
		if alpha > 0 {
			blas.Scal(1/alpha, v)
		}

		// Eliminate the damping parameter via a plane rotation.
		rhoBar1 := rhoBar
		psi := 0.0
		if p.Damp > 0 {
			rhoBar1 = math.Hypot(rhoBar, p.Damp)
			c1 := rhoBar / rhoBar1
			s1 := p.Damp / rhoBar1
			psi = s1 * phiBar
			phiBar = c1 * phiBar
		}

		// Plane rotation to eliminate the subdiagonal of the bidiagonal
		// system.
		rho := math.Hypot(rhoBar1, beta)
		c := rhoBar1 / rho
		s := beta / rho
		theta := s * alpha
		rhoBar = -c * alpha
		phi := c * phiBar
		phiBar = s * phiBar
		tau := s * phi

		// Update x and the search direction w.
		t1 := phi / rho
		t2 := -theta / rho
		for i := range x {
			x[i] += t1 * w[i]
			w[i] = v[i] + t2*w[i]
		}
		dk := 1 / rho
		ddnorm += dk * dk * blas.Dot(w, w)
		_ = ddnorm

		// Residual-norm estimates (Paige–Saunders §5): the damping
		// rotations shed a ψ contribution each iteration that belongs to
		// the damped residual ‖[A; damp·I]x − [b; 0]‖.
		res2 += psi * psi
		resNorm = math.Sqrt(phiBar*phiBar + res2)
		if p.RecordResiduals {
			residuals = append(residuals, resNorm)
		}
		// ‖Āᵀr̄‖ estimate for the damped system.
		arNorm := alpha * math.Abs(tau)

		// Stopping tests.
		if resNorm <= p.BTol*bnorm+p.ATol*anormEst*blas.Nrm2(x) {
			return LSQRResult{X: x, Iters: iter, ResNorm: resNorm, Residuals: residuals,
				Reason: "residual small: ‖r‖ <= btol·‖b‖ + atol·‖A‖·‖x‖"}
		}
		if arNorm <= p.ATol*anormEst*resNorm {
			return LSQRResult{X: x, Iters: iter, ResNorm: resNorm, Residuals: residuals,
				Reason: "normal-equations residual small"}
		}
		if iter == p.MaxIter {
			return LSQRResult{X: x, Iters: iter, ResNorm: resNorm, Residuals: residuals,
				Reason: "iteration limit reached"}
		}
	}
	return LSQRResult{X: x, ResNorm: resNorm, Residuals: residuals, Reason: "iteration limit reached"}
}

// CGNE solves the regularized normal equations (AᵀA + α·I) x = Aᵀ b with
// the conjugate gradient method.  It serves as an independent check on
// LSQR (mathematically both solve the same ridge problem; LSQR is more
// numerically stable) and as an ablation point in the benchmarks.
func CGNE(op Operator, b []float64, alpha float64, maxIter int, tol float64) LSQRResult {
	m, n := op.Dims()
	if len(b) != m {
		panic("solver: CGNE rhs length mismatch")
	}
	if maxIter <= 0 {
		maxIter = 2 * n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	// r = Aᵀb − (AᵀA + αI)x = Aᵀb at x=0.
	r := op.ApplyT(b, nil)
	pvec := make([]float64, n)
	copy(pvec, r)
	tmpM := make([]float64, m)
	ap := make([]float64, n)
	rs := blas.Dot(r, r)
	rs0 := rs
	iters := 0
	for it := 0; it < maxIter && rs > tol*tol*rs0; it++ {
		iters = it + 1
		op.Apply(pvec, tmpM)
		op.ApplyT(tmpM, ap)
		if alpha != 0 { //srdalint:ignore floatcmp alpha is exactly zero only at bidiagonalization breakdown
			blas.Axpy(alpha, pvec, ap)
		}
		den := blas.Dot(pvec, ap)
		if den <= 0 {
			break
		}
		step := rs / den
		blas.Axpy(step, pvec, x)
		blas.Axpy(-step, ap, r)
		rsNew := blas.Dot(r, r)
		beta := rsNew / rs
		rs = rsNew
		for i := range pvec {
			pvec[i] = r[i] + beta*pvec[i]
		}
	}
	res := op.Apply(x, nil)
	blas.Axpy(-1, b, res)
	return LSQRResult{X: x, Iters: iters, ResNorm: blas.Nrm2(res), Reason: "cgne"}
}
