package solver

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/decomp"
	"srda/internal/mat"
	"srda/internal/sparse"
)

func randDense(rng *rand.Rand, r, c int) *mat.Dense {
	m := mat.NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// ridgeDirect solves (AᵀA + αI)x = Aᵀb by Cholesky, the ground truth the
// iterative solvers must match.
func ridgeDirect(t *testing.T, a *mat.Dense, b []float64, alpha float64) []float64 {
	t.Helper()
	g := mat.Gram(a)
	for i := 0; i < g.Rows; i++ {
		g.Set(i, i, g.At(i, i)+alpha)
	}
	ch, err := decomp.NewCholesky(g)
	if err != nil {
		t.Fatalf("ridgeDirect: %v", err)
	}
	return ch.SolveVec(a.MulTVec(b, nil), nil)
}

func TestLSQRConsistentSystem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n := 60, 12
	a := randDense(rng, m, n)
	xTrue := randVec(rng, n)
	b := a.MulVec(xTrue, nil)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 200})
	for i := range xTrue {
		if math.Abs(res.X[i]-xTrue[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v (reason %q)", i, res.X[i], xTrue[i], res.Reason)
		}
	}
}

func TestLSQRMatchesNormalEquations(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n := 80, 15
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	want := ridgeDirect(t, a, b, 0)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 300, ATol: 1e-12, BTol: 1e-12})
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, res.X[i], want[i])
		}
	}
}

func TestLSQRDampedMatchesRidge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 50, 10
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	alpha := 1.0
	want := ridgeDirect(t, a, b, alpha)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{Damp: math.Sqrt(alpha), MaxIter: 300, ATol: 1e-12, BTol: 1e-12})
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, res.X[i], want[i])
		}
	}
}

func TestLSQRUnderdeterminedDamped(t *testing.T) {
	// n > m: ridge still has a unique solution; LSQR must find it.
	rng := rand.New(rand.NewSource(4))
	m, n := 10, 40
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	alpha := 0.5
	// Direct solution via dual form: x = Aᵀ(AAᵀ + αI)⁻¹ b.
	g := mat.GramT(a)
	for i := 0; i < m; i++ {
		g.Set(i, i, g.At(i, i)+alpha)
	}
	ch, err := decomp.NewCholesky(g)
	if err != nil {
		t.Fatal(err)
	}
	want := a.MulTVec(ch.SolveVec(b, nil), nil)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{Damp: math.Sqrt(alpha), MaxIter: 400, ATol: 1e-13, BTol: 1e-13})
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, res.X[i], want[i])
		}
	}
}

func TestLSQRZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 5, 3)
	res := LSQR(DenseOp{A: a}, make([]float64, 5), LSQRParams{})
	for _, v := range res.X {
		if v != 0 {
			t.Fatal("x must be zero for zero rhs")
		}
	}
}

func TestLSQRSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n := 70, 30
	d := mat.NewDense(m, n)
	bld := sparse.NewBuilder(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.12 {
				v := rng.NormFloat64()
				d.Set(i, j, v)
				bld.Add(i, j, v)
			}
		}
	}
	s := bld.Build()
	b := randVec(rng, m)
	p := LSQRParams{Damp: 0.3, MaxIter: 200, ATol: 1e-12, BTol: 1e-12}
	xd := LSQR(DenseOp{A: d}, b, p).X
	xs := LSQR(SparseOp{A: s}, b, p).X
	for i := range xd {
		if math.Abs(xd[i]-xs[i]) > 1e-8 {
			t.Fatalf("sparse/dense divergence at %d: %v vs %v", i, xd[i], xs[i])
		}
	}
}

func TestLSQRConvergesFastOnWellConditioned(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n := 200, 20
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 100})
	if res.Iters > 60 {
		t.Fatalf("LSQR took %d iterations on a well-conditioned system", res.Iters)
	}
}

func TestAugmentedOpEquivalentToExplicitOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n := 40, 9
	a := randDense(rng, m, n)
	aug := mat.NewDense(m, n+1)
	for i := 0; i < m; i++ {
		copy(aug.RowView(i)[:n], a.RowView(i))
		aug.Set(i, n, 1)
	}
	x := randVec(rng, n+1)
	got := AugmentedOp{DenseOp{A: a}}.Apply(x, nil)
	want := aug.MulVec(x, nil)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("Apply mismatch at %d", i)
		}
	}
	y := randVec(rng, m)
	gt := AugmentedOp{DenseOp{A: a}}.ApplyT(y, nil)
	wt := aug.MulTVec(y, nil)
	for i := range gt {
		if math.Abs(gt[i]-wt[i]) > 1e-12 {
			t.Fatalf("ApplyT mismatch at %d", i)
		}
	}
}

func TestCenteredOpEquivalentToExplicitCentering(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 25, 7
	a := randDense(rng, m, n)
	centered := a.Clone()
	mu := centered.CenterRows()
	op := CenteredOp{Inner: DenseOp{A: a}, Mu: mu}
	x := randVec(rng, n)
	got := op.Apply(x, nil)
	want := centered.MulVec(x, nil)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("Apply mismatch at %d", i)
		}
	}
	y := randVec(rng, m)
	gt := op.ApplyT(y, nil)
	wt := centered.MulTVec(y, nil)
	for i := range gt {
		if math.Abs(gt[i]-wt[i]) > 1e-10 {
			t.Fatalf("ApplyT mismatch at %d", i)
		}
	}
}

func TestCGNEMatchesRidgeDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, n := 60, 14
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	alpha := 0.7
	want := ridgeDirect(t, a, b, alpha)
	res := CGNE(DenseOp{A: a}, b, alpha, 500, 1e-12)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d]=%v want %v", i, res.X[i], want[i])
		}
	}
}

func TestLSQRAndCGNEAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 10+rng.Intn(30), 2+rng.Intn(8)
		a := randDense(rng, m, n)
		b := randVec(rng, m)
		alpha := 0.1 + rng.Float64()
		x1 := LSQR(DenseOp{A: a}, b, LSQRParams{Damp: math.Sqrt(alpha), MaxIter: 400, ATol: 1e-13, BTol: 1e-13}).X
		x2 := CGNE(DenseOp{A: a}, b, alpha, 1000, 1e-13).X
		for i := range x1 {
			if math.Abs(x1[i]-x2[i]) > 1e-5*(1+math.Abs(x1[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLSQRIterationLimitRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 100, 50)
	b := randVec(rng, 100)
	res := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 3, ATol: 1e-16, BTol: 1e-16})
	if res.Iters > 3 {
		t.Fatalf("Iters=%d exceeds MaxIter", res.Iters)
	}
}

func TestLSQRPanicsOnBadRHS(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LSQR(DenseOp{A: mat.NewDense(3, 2)}, make([]float64, 4), LSQRParams{})
}

func TestDiskOpStickyError(t *testing.T) {
	// A DiskCSR whose file has been closed must surface the error through
	// Err and produce zero vectors, not panic.
	rng := rand.New(rand.NewSource(30))
	d := mat.NewDense(6, 4)
	b := sparse.NewBuilder(6, 4)
	for i := 0; i < 6; i++ {
		v := rng.NormFloat64()
		d.Set(i, i%4, v)
		b.Add(i, i%4, v)
	}
	s := b.Build()
	dir := t.TempDir()
	path := dir + "/m.csr"
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	dc, err := sparse.OpenDiskCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	op := &DiskOp{A: dc}
	if m, n := op.Dims(); m != 6 || n != 4 {
		t.Fatalf("Dims %d %d", m, n)
	}
	x := []float64{1, 1, 1, 1}
	out := op.Apply(x, nil)
	want := s.MulVec(x, nil)
	for i := range want {
		if out[i] != want[i] {
			t.Fatal("healthy DiskOp should match in-memory")
		}
	}
	dc.Close() // sabotage
	out = op.Apply(x, nil)
	for _, v := range out {
		if v != 0 {
			t.Fatal("failed operator should produce zeros")
		}
	}
	if op.Err() == nil {
		t.Fatal("error not recorded")
	}
	// subsequent ApplyT short-circuits
	if out := op.ApplyT(make([]float64, 6), nil); out[0] != 0 {
		t.Fatal("sticky error not honored")
	}
}

func TestOperatorDims(t *testing.T) {
	a := mat.NewDense(3, 5)
	if m, n := (SparseOp{A: sparse.FromDense(a, 0)}).Dims(); m != 3 || n != 5 {
		t.Fatalf("SparseOp dims %d %d", m, n)
	}
	if m, n := (CenteredOp{Inner: DenseOp{A: a}, Mu: make([]float64, 5)}).Dims(); m != 3 || n != 5 {
		t.Fatalf("CenteredOp dims %d %d", m, n)
	}
}

// TestLSQRRecordResiduals checks the recorded trajectory: one entry per
// iteration, final entry equal to the reported ResNorm, no perturbation of
// the solution, and no recording when the flag is off.
func TestLSQRRecordResiduals(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, n := 60, 12
	a := randDense(rng, m, n)
	b := randVec(rng, m)
	plain := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 50, Damp: 0.3})
	rec := LSQR(DenseOp{A: a}, b, LSQRParams{MaxIter: 50, Damp: 0.3, RecordResiduals: true})
	if plain.Residuals != nil {
		t.Fatal("residuals recorded without the flag")
	}
	if len(rec.Residuals) != rec.Iters {
		t.Fatalf("recorded %d residuals for %d iterations", len(rec.Residuals), rec.Iters)
	}
	if rec.Iters == 0 {
		t.Fatal("solve took no iterations")
	}
	if got := rec.Residuals[len(rec.Residuals)-1]; got != rec.ResNorm {
		t.Fatalf("last recorded residual %v != ResNorm %v", got, rec.ResNorm)
	}
	// Recording must not change the arithmetic.
	if plain.Iters != rec.Iters || plain.ResNorm != rec.ResNorm {
		t.Fatalf("recording perturbed the solve: iters %d vs %d, resnorm %v vs %v",
			plain.Iters, rec.Iters, plain.ResNorm, rec.ResNorm)
	}
	for i := range plain.X {
		if plain.X[i] != rec.X[i] {
			t.Fatalf("recording perturbed x[%d]: %v vs %v", i, plain.X[i], rec.X[i])
		}
	}
	// The damped residual estimate is monotonically non-increasing for LSQR.
	for i := 1; i < len(rec.Residuals); i++ {
		if rec.Residuals[i] > rec.Residuals[i-1]+1e-12 {
			t.Fatalf("residual increased at iteration %d: %v -> %v",
				i+1, rec.Residuals[i-1], rec.Residuals[i])
		}
	}
}
