package solver

import (
	"errors"
	"math"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// SymOperator is a symmetric linear map R^n → R^n exposed through its
// action; the adjoint is itself.  Graph adjacency/Laplacian matrices are
// the motivating implementations.
type SymOperator interface {
	// Dim returns n.
	Dim() int
	// Apply computes A*x into dst (allocated when nil).
	Apply(x, dst []float64) []float64
}

// DenseSymOp adapts a symmetric *mat.Dense.
type DenseSymOp struct{ A *mat.Dense }

// Dim implements SymOperator.
func (o DenseSymOp) Dim() int { return o.A.Rows }

// Apply implements SymOperator.
func (o DenseSymOp) Apply(x, dst []float64) []float64 { return o.A.MulVec(x, dst) }

// LanczosResult holds the leading eigenpairs found.
type LanczosResult struct {
	// Values are the eigenvalues in descending order.
	Values []float64
	// Vectors is n×k, column j pairing with Values[j]; columns are
	// orthonormal.
	Vectors *mat.Dense
	// Iters is the Krylov dimension actually used.
	Iters int
}

// ErrLanczosBreakdown is returned when the Krylov space exhausts before
// any eigenpair converges (possible only for pathological operators).
var ErrLanczosBreakdown = errors.New("solver: Lanczos breakdown before convergence")

// Lanczos computes the k algebraically largest eigenpairs of a symmetric
// operator using the Lanczos iteration with full reorthogonalization.
// maxIter caps the Krylov dimension (default 8k+20, clamped to n); tol is
// the residual tolerance relative to the spectral-norm estimate (default
// 1e-10).  seed fixes the start vector for reproducibility.
//
// Full reorthogonalization costs O(iter²·n) but is robust against the
// ghost-eigenvalue problem; the Krylov dimensions this repository needs
// (c−1+1 eigenvectors of graph matrices) keep iter small.
func Lanczos(op SymOperator, k int, maxIter int, tol float64, seed int64) (*LanczosResult, error) {
	n := op.Dim()
	if k <= 0 {
		return nil, errors.New("solver: Lanczos needs k >= 1")
	}
	if k > n {
		k = n
	}
	if maxIter <= 0 {
		maxIter = 8*k + 20
	}
	if maxIter > n {
		maxIter = n
	}
	if maxIter < k {
		maxIter = k
	}
	if tol <= 0 {
		tol = 1e-10
	}

	// Krylov basis, stored row-major: q[j] is the j-th Lanczos vector.
	basis := mat.NewDense(maxIter, n)
	alpha := make([]float64, maxIter)
	beta := make([]float64, maxIter) // beta[j] links q[j] and q[j+1]

	// Deterministic pseudo-random start vector.
	q0 := basis.RowView(0)
	state := uint64(seed)*2862933555777941757 + 3037000493
	for i := range q0 {
		state = state*6364136223846793005 + 1442695040888963407
		q0[i] = float64(int64(state>>11))/float64(1<<52) - 0.5
	}
	blas.Scal(1/blas.Nrm2(q0), q0)

	w := make([]float64, n)
	dim := 0
	for j := 0; j < maxIter; j++ {
		dim = j + 1
		qj := basis.RowView(j)
		op.Apply(qj, w)
		alpha[j] = blas.Dot(qj, w)
		// w -= alpha*q_j + beta*q_{j-1}
		blas.Axpy(-alpha[j], qj, w)
		if j > 0 {
			blas.Axpy(-beta[j-1], basis.RowView(j-1), w)
		}
		// Full reorthogonalization (twice is enough).
		for pass := 0; pass < 2; pass++ {
			for i := 0; i <= j; i++ {
				qi := basis.RowView(i)
				blas.Axpy(-blas.Dot(qi, w), qi, w)
			}
		}
		b := blas.Nrm2(w)
		beta[j] = b
		if j+1 < maxIter {
			if b <= 1e-14*(math.Abs(alpha[j])+1) {
				// Invariant subspace found: the Krylov space is exact.
				break
			}
			copy(basis.RowView(j+1), w)
			blas.Scal(1/b, basis.RowView(j+1))
		}
	}

	// Solve the dim×dim tridiagonal eigenproblem densely.
	t := mat.NewDense(dim, dim)
	for j := 0; j < dim; j++ {
		t.Set(j, j, alpha[j])
		if j+1 < dim {
			t.Set(j, j+1, beta[j])
			t.Set(j+1, j, beta[j])
		}
	}
	eig, err := decomp.NewSymEig(t)
	if err != nil {
		return nil, err
	}
	if dim < k {
		k = dim
	}
	if k == 0 {
		return nil, ErrLanczosBreakdown
	}

	// Ritz vectors: V = Qᵀ S (basis rows are q_j).
	vectors := mat.NewDense(n, k)
	col := make([]float64, dim)
	for c := 0; c < k; c++ {
		eig.Vectors.ColCopy(c, col)
		out := make([]float64, n)
		for j := 0; j < dim; j++ {
			blas.Axpy(col[j], basis.RowView(j), out)
		}
		vectors.SetCol(c, out)
	}
	return &LanczosResult{Values: eig.Values[:k], Vectors: vectors, Iters: dim}, nil
}
