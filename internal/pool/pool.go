// Package pool provides the bounded, shared worker pool behind every
// parallel kernel in this repository (internal/blas Par*, internal/sparse
// Par*, internal/mat Par*).  A single process-wide pool sized by
// GOMAXPROCS at startup is reused across all calls, so a hot training or
// serving loop never pays a per-call goroutine spawn; kernels only hand
// row shards to workers that are already parked.
//
// Determinism contract: the pool never touches data — it only partitions
// an index range [0, n) into contiguous spans and runs a caller-supplied
// closure on each span.  Kernels built on it shard exclusively over
// independent output rows (or columns), with every output element computed
// by exactly the same sequence of floating-point operations as the
// sequential kernel.  Results are therefore bitwise identical to the
// sequential code regardless of worker count or scheduling order; the
// equivalence suites in internal/blas and internal/sparse enforce this for
// every kernel at several worker counts.
//
// Deadlock safety under nesting (a parallel per-response LSQR solve whose
// operator mat-vecs are themselves parallel, for example) comes from the
// handoff discipline: a span is given to a worker only if one is idle at
// that instant — otherwise the submitting goroutine runs the span inline.
// Every span is always actively executing somewhere, so Run can never
// block on work that nobody is free to start.
package pool

import (
	"context"
	"runtime"
	"sync"

	"srda/internal/obs"
)

// Pool is a fixed-size set of long-lived worker goroutines.  The zero
// value is not usable; construct with New or use the process-wide Shared
// pool.  Workers are started lazily on the first Run, so merely importing
// a package that holds a Pool costs nothing.
type Pool struct {
	size  int
	tasks chan func()
	once  sync.Once
}

// New creates a pool of the given size (minimum 1).  The workers live for
// the life of the process; pools are meant to be created once and shared,
// which is why there is no Close.
func New(size int) *Pool {
	if size < 1 {
		size = 1
	}
	// Unbuffered on purpose: a send succeeds only when a worker is parked
	// at the receive, which is what makes the inline fallback in Run a
	// guarantee of progress rather than a heuristic.
	return &Pool{size: size, tasks: make(chan func())}
}

// Size returns the number of worker goroutines.
func (p *Pool) Size() int { return p.size }

func (p *Pool) startWorkers() {
	p.once.Do(func() {
		for i := 0; i < p.size; i++ {
			//srdalint:ignore ctxflow this IS the bounded worker set: exactly p.size goroutines for the pool's lifetime
			go func() {
				for task := range p.tasks {
					task()
				}
			}()
		}
	})
}

// Run partitions [0, n) into at most shards contiguous spans of
// near-equal length and executes fn(lo, hi) once per span, returning when
// every span has finished.  shards <= 0 asks for the pool size.  The
// calling goroutine always executes the last span itself, and any span no
// worker is free to take immediately runs inline on the caller too, so
// Run makes progress even when the pool is saturated by enclosing
// parallel work.
//
// fn must treat its spans as independent: spans of one Run execute
// concurrently, and Run itself provides no ordering between them beyond
// completion before return.  Shard boundaries depend only on (n, shards),
// never on scheduling, so callers that need reproducible partitions get
// them for free.
func (p *Pool) Run(shards, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if shards <= 0 {
		shards = p.size
	}
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		fn(0, n)
		return
	}
	p.startWorkers()
	var wg sync.WaitGroup
	base, rem := n/shards, n%shards
	lo := 0
	for s := 0; s < shards-1; s++ {
		hi := lo + base
		if s < rem {
			hi++
		}
		spanLo, spanHi := lo, hi
		wg.Add(1)
		body := func() {
			defer wg.Done()
			fn(spanLo, spanHi)
		}
		submitted := obs.NowStamp()
		select {
		case p.tasks <- func() {
			queueWait.Observe(submitted.Seconds())
			body()
		}:
			spansDispatched.Inc()
		default:
			// No worker is idle right now; running inline keeps every
			// span actively executing and makes nested Runs deadlock-free.
			spansInline.Inc()
			body()
		}
		lo = hi
	}
	fn(lo, n)
	wg.Wait()
}

// shared is the process-wide pool every Par* kernel uses, sized by
// GOMAXPROCS at startup.  Requesting more shards than workers is allowed
// (Run only bounds concurrency, not sharding), which is how the
// equivalence tests exercise 7-way sharding on small machines.
var shared = New(runtime.GOMAXPROCS(0))

// Shared returns the process-wide pool.
func Shared() *Pool { return shared }

// Do runs fn over [0, n) on the shared pool split into at most workers
// spans; workers <= 0 means GOMAXPROCS.  This is the single entry point
// the parallel kernels use.
func Do(workers, n int, fn func(lo, hi int)) { shared.Run(workers, n, fn) }

// DoCtx is Do under request-scoped tracing: when ctx carries an active
// span (obs.StartSpan), the whole sharded run is recorded as one
// "pool.do" child covering dispatch through completion.  Without a span
// the overhead is a nil check.  The context carries only the span —
// cancellation is deliberately not consulted, because a dispatched shard
// set must always run to completion to keep outputs bitwise identical to
// the sequential kernel.
func DoCtx(ctx context.Context, workers, n int, fn func(lo, hi int)) {
	_, sp := obs.StartSpan(ctx, "pool.do")
	shared.Run(workers, n, fn)
	sp.End()
}
