package pool

import (
	"strings"
	"testing"

	"srda/internal/obs"
)

// TestMetricsAccountForEverySubmittedSpan checks the utilization
// accounting invariants delta-style (the counters are process-wide, so
// absolute values depend on other tests): every submitted span is counted
// exactly once as dispatched or inline, and the queue-wait histogram sees
// exactly the dispatched ones.
func TestMetricsAccountForEverySubmittedSpan(t *testing.T) {
	d0, i0, q0 := spansDispatched.Value(), spansInline.Value(), queueWait.Count()
	p := New(2)
	const runs, shards = 50, 4
	for r := 0; r < runs; r++ {
		p.Run(shards, 400, func(lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			_ = s
		})
	}
	dd := spansDispatched.Value() - d0
	di := spansInline.Value() - i0
	// shards-1 submitted spans per Run; the caller-run last span is never
	// counted.
	if dd+di != runs*(shards-1) {
		t.Fatalf("dispatched %d + inline %d = %d submitted spans, want %d",
			dd, di, dd+di, runs*(shards-1))
	}
	if got := queueWait.Count() - q0; got != dd {
		t.Fatalf("queue-wait observations %d, want one per dispatched span (%d)", got, dd)
	}
}

// TestMetricsInlineFallbackCounted pins the inline path deterministically:
// with the only worker provably busy, a submitted span must fall back to
// the caller and be counted as inline, with no queue-wait observation.
func TestMetricsInlineFallbackCounted(t *testing.T) {
	p := New(1)
	p.startWorkers()
	block := make(chan struct{})
	// The task channel is unbuffered, so this send returning proves the
	// worker has the blocking task in hand.
	p.tasks <- func() { <-block }
	defer close(block)
	d0, i0, q0 := spansDispatched.Value(), spansInline.Value(), queueWait.Count()
	p.Run(2, 2, func(lo, hi int) {})
	if got := spansInline.Value() - i0; got != 1 {
		t.Fatalf("inline spans = %d, want 1", got)
	}
	if got := spansDispatched.Value() - d0; got != 0 {
		t.Fatalf("dispatched spans = %d, want 0 (worker was busy)", got)
	}
	if got := queueWait.Count() - q0; got != 0 {
		t.Fatalf("queue-wait observations = %d, want 0 for an inline span", got)
	}
}

// TestWorkersGaugeExposed checks the shared-pool size gauge is registered
// on the process-wide registry.
func TestWorkersGaugeExposed(t *testing.T) {
	var sb strings.Builder
	obs.Default().WritePrometheus(&sb)
	for _, want := range []string{
		"srdapool_workers",
		"srdapool_spans_dispatched_total",
		"srdapool_spans_inline_total",
		"srdapool_queue_wait_seconds_bucket",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("default registry exposition missing %q", want)
		}
	}
}
