package pool

import (
	"srda/internal/obs"
)

// Pool utilization instruments, registered on the process-wide obs
// registry so srdaserve's debug endpoint (and anything else that exposes
// obs.Default()) can see how the kernel layer is scheduling.  The counters
// aggregate across every Pool in the process; in practice that is the
// shared pool plus short-lived test pools.
//
// A "submitted" span is one Run hands off via the task channel — the last
// span of every Run executes on the caller by design and is not counted.
// Submitted spans split into dispatched (a parked worker took the handoff)
// and inline (no worker was idle, so the submitting goroutine ran the span
// itself — the fallback that keeps nested Runs deadlock-free).  The
// queue-wait histogram measures handoff latency, from just before the
// channel send to the worker starting the span, for dispatched spans only.
//
// Timing goes through obs.Stamp rather than the time package directly:
// internal/obs is the sole sanctioned clock owner under the noclock lint
// contract, and the measurement never feeds back into any numeric result.
var (
	spansDispatched = obs.Default().NewCounter("srdapool_spans_dispatched_total",
		"Pool spans handed to a parked worker.")
	spansInline = obs.Default().NewCounter("srdapool_spans_inline_total",
		"Pool spans run inline because no worker was idle.")
	queueWait = obs.Default().NewHistogram("srdapool_queue_wait_seconds",
		"Handoff latency from span submission to worker pick-up.",
		[]float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1})
)

func init() {
	obs.Default().NewGaugeFunc("srdapool_workers",
		"Worker goroutines in the shared pool.",
		func() int64 { return int64(shared.size) })
}
