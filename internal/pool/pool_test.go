package pool

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCoversRangeExactlyOnce checks that every index in [0, n) is
// visited by exactly one span for a spread of (n, shards) combinations,
// including shards > n and shards > pool size.
func TestRunCoversRangeExactlyOnce(t *testing.T) {
	p := New(3)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 65, 1000} {
		for _, shards := range []int{0, 1, 2, 4, 7, 100} {
			var mu sync.Mutex
			seen := make([]int, n)
			p.Run(shards, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("n=%d shards=%d: bad span [%d,%d)", n, shards, lo, hi)
					return
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu.Unlock()
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d shards=%d: index %d visited %d times", n, shards, i, c)
				}
			}
		}
	}
}

// TestRunSpanCountBounded checks that Run never creates more spans than
// requested (or than n).
func TestRunSpanCountBounded(t *testing.T) {
	p := New(4)
	for _, tc := range []struct{ shards, n, maxSpans int }{
		{2, 100, 2}, {7, 100, 7}, {7, 3, 3}, {0, 100, 4}, {1, 100, 1},
	} {
		var spans atomic.Int64
		p.Run(tc.shards, tc.n, func(lo, hi int) { spans.Add(1) })
		if got := int(spans.Load()); got > tc.maxSpans {
			t.Errorf("shards=%d n=%d: %d spans, want <= %d", tc.shards, tc.n, got, tc.maxSpans)
		}
	}
}

// TestRunBalancedPartition checks spans differ in length by at most one
// and are deterministic functions of (n, shards).
func TestRunBalancedPartition(t *testing.T) {
	p := New(2)
	n, shards := 103, 7
	collect := func() [][2]int {
		var mu sync.Mutex
		var spans [][2]int
		p.Run(shards, n, func(lo, hi int) {
			mu.Lock()
			spans = append(spans, [2]int{lo, hi})
			mu.Unlock()
		})
		return spans
	}
	spans := collect()
	minLen, maxLen := n, 0
	for _, s := range spans {
		if l := s[1] - s[0]; l < minLen {
			minLen = l
		} else if l > maxLen {
			maxLen = l
		}
	}
	if maxLen-minLen > 1 {
		t.Errorf("unbalanced spans: min %d max %d", minLen, maxLen)
	}
	// Same (n, shards) must produce the same span set on every call.
	again := collect()
	key := func(spans [][2]int) map[[2]int]bool {
		m := map[[2]int]bool{}
		for _, s := range spans {
			m[s] = true
		}
		return m
	}
	a, b := key(spans), key(again)
	if len(a) != len(b) {
		t.Fatalf("span count changed between runs: %d vs %d", len(a), len(b))
	}
	for s := range a {
		if !b[s] {
			t.Fatalf("span %v missing on second run", s)
		}
	}
}

// TestNestedRunDoesNotDeadlock saturates a tiny pool with Runs that
// themselves Run, the shape parallel LSQR solves over parallel mat-vec
// operators produce.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.Run(4, 8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p.Run(4, 16, func(l, h int) {
				total.Add(int64(h - l))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested runs covered %d indices, want %d", got, 8*16)
	}
}

// TestSharedPool sanity-checks the process-wide pool and Do.
func TestSharedPool(t *testing.T) {
	if Shared().Size() < 1 {
		t.Fatalf("shared pool size %d", Shared().Size())
	}
	var sum atomic.Int64
	Do(7, 100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	})
	if got := sum.Load(); got != 99*100/2 {
		t.Fatalf("Do sum = %d, want %d", got, 99*100/2)
	}
}

// TestRunManyConcurrentCallers hammers one pool from many goroutines to
// give the race detector something to chew on.
func TestRunManyConcurrentCallers(t *testing.T) {
	p := New(4)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]int, 257)
			for rep := 0; rep < 20; rep++ {
				p.Run(0, len(out), func(lo, hi int) {
					for i := lo; i < hi; i++ {
						out[i]++
					}
				})
			}
			for i, c := range out {
				if c != 20 {
					t.Errorf("index %d incremented %d times, want 20", i, c)
					return
				}
			}
		}()
	}
	wg.Wait()
}
