package lint

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// PartWin ("parallel twin") enforces the core of the determinism
// contract: every exported Par* kernel in the kernel packages
// (internal/blas, internal/mat, internal/sparse) must ship with
//
//  1. a same-package sequential twin — the function or method named by
//     stripping the Par prefix — that defines the reference semantics, and
//  2. a _test.go file in the package that exercises the Par kernel against
//     math.Float64bits, i.e. a bitwise equivalence test, not an epsilon
//     comparison.
//
// Bitwise (not approximate) equivalence is what lets callers flip worker
// counts freely: doc/PERFORMANCE.md promises identical models at any
// parallelism, and this analyzer is what keeps a new kernel from shipping
// without that proof.
var PartWin = &Analyzer{
	Name: "partwin",
	Doc:  "every exported Par* kernel needs a sequential twin and a Float64bits equivalence test",
	Run:  runPartWin,
}

func runPartWin(pass *Pass) {
	if !isKernelPkg(pass.Pkg) {
		return
	}
	scope := pass.Pkg.Types.Scope()

	// identsPerTestFile caches the identifier sets of the package's test
	// files; a kernel is covered when one file mentions both the kernel
	// and Float64bits.
	var identsPerTestFile []map[string]bool
	for _, f := range pass.Pkg.TestFiles {
		ids := make(map[string]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				ids[id.Name] = true
			}
			return true
		})
		identsPerTestFile = append(identsPerTestFile, ids)
	}
	covered := func(name string) bool {
		for _, ids := range identsPerTestFile {
			if ids[name] && ids["Float64bits"] {
				return true
			}
		}
		return false
	}

	check := func(fn *types.Func, twinExists func(string) bool) {
		name := fn.Name()
		twin, ok := parTwinName(name)
		if !ok {
			return
		}
		if !twinExists(twin) {
			pass.Reportf(fn.Pos(), "parallel kernel %s has no sequential twin %s in package %s; the twin defines the reference semantics the Par version must match bitwise", name, twin, pass.Pkg.Path)
		}
		if !covered(name) {
			pass.Reportf(fn.Pos(), "parallel kernel %s has no Float64bits equivalence test in a %s _test.go file; add a workers×shapes table comparing it bitwise to %s", name, pass.Pkg.Name, twin)
		}
	}

	for _, nm := range scope.Names() {
		switch obj := scope.Lookup(nm).(type) {
		case *types.Func:
			check(obj, func(twin string) bool {
				_, ok := scope.Lookup(twin).(*types.Func)
				return ok
			})
		case *types.TypeName:
			named, ok := obj.Type().(*types.Named)
			if !ok {
				continue
			}
			methods := make(map[string]bool, named.NumMethods())
			for i := 0; i < named.NumMethods(); i++ {
				methods[named.Method(i).Name()] = true
			}
			for i := 0; i < named.NumMethods(); i++ {
				check(named.Method(i), func(twin string) bool { return methods[twin] })
			}
		}
	}
}

// parTwinName returns the sequential-twin name for an exported Par*
// kernel name, or ok=false when the name is not a Par kernel.
func parTwinName(name string) (twin string, ok bool) {
	if !strings.HasPrefix(name, "Par") || len(name) == len("Par") {
		return "", false
	}
	rest := name[len("Par"):]
	r, _ := utf8.DecodeRuneInString(rest)
	if !unicode.IsUpper(r) {
		return "", false // e.g. Parse, Partition
	}
	return rest, true
}
