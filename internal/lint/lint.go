// Package lint is srdalint: a from-scratch, stdlib-only static-analysis
// suite (go/parser + go/ast + go/types + go/importer) that mechanically
// enforces this repository's kernel determinism contract.
//
// The SRDA reproduction's claim to linear time only survives in practice
// if the hot kernels stay allocation-disciplined, the parallel twins stay
// bitwise-identical to their sequential versions, and every source of
// nondeterminism (goroutines, clocks, unseeded randomness) is confined to
// the few packages allowed to own it.  doc/PERFORMANCE.md states that
// contract in prose; this package states it as twelve analyzers that run
// over the whole module on every `make check`:
//
//   - goroutine-discipline: no raw go statements outside internal/pool,
//     internal/serve, and main packages — kernel fan-out goes through the
//     shared pool so nesting can never deadlock and worker budgets hold.
//   - floatcmp: no ==/!= with floating-point operands; exact-zero and
//     exact-one guards that are part of a kernel's contract carry an
//     explicit suppression with a reason.
//   - seeded-rand: every math/rand source is built by
//     rand.New(rand.NewSource(seed)) with the seed threaded from options
//     or flags; the global generator is off-limits outside tests.
//   - partwin: every exported Par* kernel in the kernel packages has a
//     same-package sequential twin and a _test.go file pairing it with a
//     math.Float64bits equivalence check.
//   - hotalloc: no make/append/new/composite-literal or fmt allocations
//     inside the innermost loops of kernel-package function bodies.
//   - noclock: no wall-clock reads (time.Now and friends) inside the
//     numeric packages or internal/pool; internal/obs is the single
//     sanctioned clock owner, and instrumented code records through the
//     obs.Trace/obs.Stamp handles it vends.  Other timing belongs to the
//     bench and experiment layers.
//   - errdrop: no silently discarded error returns outside tests; an
//     explicit `_ =` is required where dropping is intentional.
//   - rawlog: no package log (and no fmt.Fprint* to os.Stderr) in library
//     packages — diagnostics flow through the structured, level-gated,
//     trace-correlated obs.Logger; main packages and internal/obs itself
//     are exempt.
//   - maprange: no map iteration on the deterministic-output paths
//     (exposition, serialization, routing, refit ordering) unless the
//     keys are collected and sorted first.
//   - lockcheck: no mutex held across a blocking call, channel operation,
//     or hot-kernel invocation, and no lock values copied by assignment,
//     range, or parameter passing.
//   - ctxflow: serve- and kernel-path contexts carry spans only — no
//     cancellation-sensitive calls in kernels, no cancellable context
//     construction on the serve path, no go-in-loop spawns.
//   - traceheader: the W3C Traceparent propagation header is written
//     only by obs.InjectTrace; an ad-hoc Header.Set/Add with that key
//     detaches the downstream subtree from the request's trace.
//     internal/obs, as the propagation implementation, is exempt.
//
// Several rules are interprocedural.  internal/lint/graph builds a
// module-wide call graph (direct calls, method calls with interface
// fan-out, function values handed to pool.Do and friends) and marks the
// transitive closure of functions reachable from the kernel entry points
// — the batch-predict surface, the exported Par* kernels, and the
// LSQR/Cholesky inner solves.  hotalloc, noclock, seeded-rand, maprange,
// and ctxflow all fire through that closure: a helper in any package
// becomes kernel code the moment a kernel can reach it.
//
// Findings can be suppressed per line with
//
//	//srdalint:ignore <analyzer> <reason>
//
// either trailing the offending line or on its own line immediately
// above.  The reason is mandatory; a malformed suppression is itself a
// finding, and so is a stale one — a suppression whose analyzer no
// longer fires on the covered line is reported so silenced findings
// cannot outlive the code that earned them.  There is deliberately no
// -fix mode: every suppression is a reviewed, explained decision in the
// diff.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one rule over one package at a time.
type Analyzer struct {
	// Name is the identifier used in output and suppression comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Module   *Module
	Pkg      *Package
	analyzer *Analyzer
	sink     *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	*p.sink = append(*p.sink, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, addressed by absolute file position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// Analyzers is the full srdalint suite in reporting order.
var Analyzers = []*Analyzer{
	GoroutineDiscipline,
	FloatCmp,
	SeededRand,
	PartWin,
	HotAlloc,
	NoClock,
	ErrDrop,
	RawLog,
	MapRange,
	LockCheck,
	CtxFlow,
	TraceHeader,
}

// AnalyzerByName returns the analyzer with the given name, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over every package of mod, applies
// //srdalint:ignore suppressions, and returns the surviving diagnostics
// sorted by file, line, column, and analyzer.  Malformed suppression
// comments are reported under the pseudo-analyzer "suppress", and so are
// stale ones: a well-formed suppression for an analyzer in this run whose
// covered line no longer produces a matching finding is dead weight that
// would silently swallow the next regression on that line.
func Run(mod *Module, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Pkgs {
		for _, a := range analyzers {
			pass := &Pass{Module: mod, Pkg: pkg, analyzer: a, sink: &diags}
			a.Run(pass)
		}
	}
	sup, malformed, wellFormed := collectSuppressions(mod)
	// Staleness is judged against the pre-filter diagnostics: a
	// suppression is live exactly when the analyzer it names still fires
	// on the line it covers.
	stale := staleSuppressions(diags, wellFormed, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		if !sup.covers(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	kept = append(kept, stale...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// ---- package-policy helpers shared by the analyzers ----

// kernelDirs are the packages holding the hot numeric kernels whose
// parallel twins and allocation discipline the contract is about.
var kernelDirs = []string{"internal/blas", "internal/mat", "internal/sparse"}

// numericDirs are all packages that compute on floats; wall-clock reads
// are banned here so results never depend on timing.
var numericDirs = []string{
	"internal/blas", "internal/mat", "internal/sparse",
	"internal/solver", "internal/decomp", "internal/regress",
	"internal/lda", "internal/kernel", "internal/flam",
	"internal/idrqr", "internal/graph", "internal/cluster",
	"internal/core", "internal/classify",
}

// goroutineOwners are the only library packages allowed to start
// goroutines directly: the worker pool itself and the serving tier —
// workers (internal/serve, dispatch lifecycle), the router
// (internal/router, health sweeps and the background check loop), the
// registry they share (internal/registry), the streaming trainer
// (internal/online, whose Async mode hands refits to a background
// goroutine), and the telemetry plane (internal/telemetry, whose
// StartPoller drains a caller-owned tick channel).
var goroutineOwners = []string{
	"internal/pool", "internal/serve",
	"internal/router", "internal/registry",
	"internal/online", "internal/telemetry",
}

// underAny reports whether rel equals one of dirs or lies beneath one.
func underAny(rel string, dirs []string) bool {
	for _, d := range dirs {
		if rel == d || strings.HasPrefix(rel, d+"/") {
			return true
		}
	}
	return false
}

// isKernelPkg reports whether pkg is one of the kernel packages.
func isKernelPkg(pkg *Package) bool { return underAny(pkg.RelDir, kernelDirs) }

// isNumericPkg reports whether pkg computes on floats.
func isNumericPkg(pkg *Package) bool { return underAny(pkg.RelDir, numericDirs) }

// inspectFiles walks every non-test file of the pass's package.
func (p *Pass) inspectFiles(fn func(ast.Node) bool) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, fn)
	}
}
