package lint

import (
	"go/ast"
	"go/types"
)

// RawLog bans ad-hoc logging in library packages: any use of package log
// (Printf, Fatalf, New, default-logger state — all of it) and any
// fmt.Fprint* aimed at os.Stderr.  Library diagnostics must flow through
// the structured obs.Logger the process configures once — level-gated,
// trace-correlated, optionally JSON — or be returned as errors; a stray
// log.Printf in the serving path bypasses level control, loses the
// request's trace_id, and corrupts JSON log streams.
//
// Main packages (cmd/*, examples/*) are exempt: a binary's main owns the
// process's stderr and decides how to present startup failures.
// internal/obs is exempt as the logging implementation itself.  Printing
// to stdout (fmt.Printf and friends) is untouched — tables and reports
// are output, not logging.  Test files are not checked.
var RawLog = &Analyzer{
	Name: "rawlog",
	Doc:  "no package log or fmt-to-os.Stderr logging in library packages; route through internal/obs",
	Run:  runRawLog,
}

// rawLogOwners are the packages allowed to touch raw logging machinery:
// the structured-logging implementation itself.
var rawLogOwners = []string{"internal/obs"}

// fprintFuncs are the fmt functions whose first argument picks the
// destination writer.
var fprintFuncs = map[string]bool{
	"Fprint":   true,
	"Fprintf":  true,
	"Fprintln": true,
}

func runRawLog(pass *Pass) {
	if pass.Pkg.Name == "main" || underAny(pass.Pkg.RelDir, rawLogOwners) {
		return
	}
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			obj := info.Uses[n.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "log" {
				return true
			}
			pass.Reportf(n.Pos(), "log.%s in library package %s bypasses the structured obs.Logger (no level gate, no trace_id); log through the logger the caller injects, or return an error", obj.Name(), pass.Pkg.Path)
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || len(n.Args) == 0 {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || !fprintFuncs[fn.Name()] {
				return true
			}
			if isStderr(info, n.Args[0]) {
				pass.Reportf(n.Pos(), "fmt.%s to os.Stderr in library package %s is unstructured logging; route it through obs.Logger or return an error", fn.Name(), pass.Pkg.Path)
			}
		}
		return true
	})
}

// isStderr reports whether expr resolves to the os.Stderr variable.
func isStderr(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	return ok && v.Pkg() != nil && v.Pkg().Path() == "os" && v.Name() == "Stderr"
}
