// Package work is outside the deterministic-output scope, so maprange
// only reaches it through the call graph: PredictBatch is a kernel entry
// point, everything it reaches is hot, and map iteration inside the hot
// closure perturbs outputs the equivalence suites hold bitwise.
package work

// PredictBatch is a hot entry by name prefix.
func PredictBatch(rows map[int][]float64, out []float64) {
	for i, r := range rows { // want "map iteration order is randomized per run"
		out[i] = sum(r)
	}
}

// sum is reached from PredictBatch, so its map range is hot too.
func sum(r []float64) float64 {
	var s float64
	for _, v := range r {
		s += v
	}
	return s
}

// Cold is unreachable from any entry point: its map range is fine here.
func Cold(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}
