package obs

import "sort"

// WriteOrder iterates the map directly into the output slice: the
// exposition order then depends on Go's per-run map seed.
func WriteOrder(m map[string]float64) []string {
	var out []string
	for k := range m { // want "map iteration order is randomized per run"
		out = append(out, k)
	}
	return out
}

// WriteSorted is the sanctioned shape: collect, sort, then range the
// slice.  The collection loop is order-free and says so.
func WriteSorted(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	//srdalint:ignore maprange collect-then-sort: keys are sorted below before any output is built
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, k)
	}
	return out
}
