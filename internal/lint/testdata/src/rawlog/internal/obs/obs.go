// Package obs stands in for the logging implementation itself, which is
// the one library allowed to touch raw logging machinery.
package obs

import (
	"fmt"
	"log"
	"os"
)

// Fallback is the pre-configuration logger of last resort.
var Fallback = log.New(os.Stderr, "obs ", 0)

// Emergency writes directly when the logger itself is broken.
func Emergency(msg string) { fmt.Fprintln(os.Stderr, msg) }
