// Command tool owns the process stderr; raw logging is its call.
package main

import (
	"fmt"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.Printf("starting")
	fmt.Fprintln(os.Stderr, "usage: tool")
}
