// Package work is a library: its diagnostics must flow through the
// injected structured logger, never ad-hoc process-global logging.
package work

import (
	"fmt"
	"log"
	"log/slog"
	"os"
)

// Keep holds raw logger state — the state itself is the violation.
var Keep = log.New(os.Stderr, "work ", 0) // want "log.New in library package"

// Process logs the wrong way in every branch.
func Process(n int) {
	log.Printf("processing %d items", n) // want "log.Printf in library package"
	if n == 0 {
		log.Println("nothing to do") // want "log.Println in library package"
	}
	fmt.Fprintf(os.Stderr, "warn: %d\n", n) // want "fmt.Fprintf to os.Stderr in library package"
	fmt.Fprintln(os.Stderr, "done")         // want "fmt.Fprintln to os.Stderr in library package"
}

// Report prints to stdout: that is output, not logging.
func Report(n int) {
	fmt.Printf("processed %d\n", n)
	fmt.Fprintf(os.Stdout, "total %d\n", n)
}

// Structured logs through log/slog handles, which is not package log.
func Structured(l *slog.Logger, n int) {
	l.Info("processed", "n", n)
}
