package locks

import (
	"net/http"
	"sync"
	"time"

	"corpus/lockcheck/kernels"
)

// Guarded embeds a mutex, so copying a Guarded forks its lock state.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// ByValue copies the receiver's lock state on every call.
func (g Guarded) ByValue() int { // want "receiver passes Guarded by value"
	return g.n
}

// TakeMutex copies a bare mutex parameter.
func TakeMutex(mu sync.Mutex) { // want "parameter passes sync.Mutex by value"
	mu.Lock()
	mu.Unlock()
}

// Pointers reference rather than embed: fine.
func TakePointer(g *Guarded) int { return g.n }

// Snapshot copies a lock-containing value by assignment.
func Snapshot(g *Guarded) int {
	cp := *g // want "assignment copies a value containing lock state"
	return cp.n
}

// Each copies lock-containing elements per iteration.
func Each(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want "range copies lock-containing elements"
		total += g.n
	}
	return total
}

// EachIndex iterates indices: no copy, no finding.
func EachIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// SleepHeld blocks every contender for the sleep's duration.
func SleepHeld(g *Guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding g.mu"
	g.mu.Unlock()
}

// SendHeld holds the lock to function end via the deferred unlock, so
// the send is under it.
func SendHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	ch <- g.n // want "channel send while holding g.mu"
}

// RecvHeld receives under the lock.
func RecvHeld(g *Guarded, ch chan int) int {
	g.mu.Lock()
	v := <-ch // want "channel receive while holding g.mu"
	g.mu.Unlock()
	return v
}

// SelectHeld parks under the lock.
func SelectHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	select { // want "select while holding g.mu"
	case <-ch:
	default:
	}
	g.mu.Unlock()
}

// HTTPHeld makes an outbound call under the lock.
func HTTPHeld(g *Guarded, url string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, err := http.Get(url) // want "outbound HTTP call while holding g.mu"
	return err
}

// WaitHeld waits on a WaitGroup under the lock.
func WaitHeld(g *Guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	wg.Wait() // want "sync Wait while holding g.mu"
	g.mu.Unlock()
}

// KernelHeld invokes a hot kernel under the lock: one slow batch
// convoys every contender.
func KernelHeld(g *Guarded, x, out []float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	kernels.PredictBatchRows(x, out) // want "hot kernel kernels.PredictBatchRows invoked while holding g.mu"
}

// SnapshotThenSend is the sanctioned shape: copy what you need under
// the lock, release, then block.
func SnapshotThenSend(g *Guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

// SpawnHeld starts a goroutine under the lock — the spawn itself does
// not block this goroutine, so no finding.
func SpawnHeld(g *Guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	go send(ch, n) // want "raw go statement in library package"
	g.mu.Unlock()
}

func send(ch chan int, n int) { ch <- n }
