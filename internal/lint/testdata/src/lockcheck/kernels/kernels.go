package kernels

// PredictBatchRows is a hot entry by name prefix; locks must never be
// held across a call into it.
func PredictBatchRows(x, out []float64) {
	for i := range x {
		out[i] = 2 * x[i]
	}
}
