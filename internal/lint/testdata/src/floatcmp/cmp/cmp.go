package cmp

// Same compares floats exactly with no annotation.
func Same(a, b float64) bool {
	return a == b // want "compares floating-point values exactly"
}

// Guard mixes an annotated exact-zero fast path with an unannotated
// inequality.
func Guard(x float64) float64 {
	if x == 0 { //srdalint:ignore floatcmp exact-zero fast path is part of the corpus contract
		return 0
	}
	if x != 1 { // want "compares floating-point values exactly"
		x *= 2
	}
	return x
}

//srdalint:ignore floatcmp a standalone suppression covers the next code line
func Standalone(a float64) bool { return a == 2 }

// Ints is a non-float comparison and must not be flagged.
func Ints(a, b int) bool { return a == b }

// Narrow covers the float32 operand path.
func Narrow(a float32) bool {
	return a == 0.5 // want "compares floating-point values exactly"
}
