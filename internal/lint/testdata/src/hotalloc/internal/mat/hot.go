package mat

import "fmt"

// Grow reallocates inside its innermost loop.
func Grow(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i)) // want "append inside an innermost kernel loop"
	}
	return out
}

// Scratch allocates per outer-loop iteration only, which is allowed:
// that is the per-shard scratch pattern of a pool.Do callback.
func Scratch(rows, cols int, dst []float64) {
	for i := 0; i < rows; i++ {
		buf := make([]float64, cols)
		for j := 0; j < cols; j++ {
			buf[j] = float64(i * j)
		}
		dst[i] = buf[0]
	}
}

// Render formats inside the hot loop.
func Render(xs []float64) string {
	s := ""
	for _, x := range xs {
		s += fmt.Sprintf("%g ", x) // want "fmt.Sprintf inside an innermost kernel loop"
	}
	return s
}

// Pairs both appends and builds a composite literal per iteration.
func Pairs(n int) [][2]float64 {
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, [2]float64{float64(i), 0}) // want "append inside an innermost kernel loop" "composite literal inside an innermost kernel loop"
	}
	return out
}

// Fresh allocates with make and new inside the innermost loop.
func Fresh(n int) float64 {
	var s float64
	for i := 0; i < n; i++ {
		buf := make([]float64, 4) // want "make inside an innermost kernel loop"
		p := new(float64)         // want "new inside an innermost kernel loop"
		buf[0] = float64(i)
		s += buf[0] + *p
	}
	return s
}
