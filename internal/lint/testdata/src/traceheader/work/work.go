// Package work is a library hop on the request path: trace propagation
// must go through the obs injection helper, never raw header writes.
package work

import "net/http"

// header shadows the canonical constant the way a well-meaning caller
// would; constant folding still catches it.
const header = "Traceparent"

// Forward writes the propagation header every wrong way.
func Forward(req *http.Request, v string) {
	req.Header.Set("Traceparent", v) // want "ad-hoc Header.Set of the Traceparent header"
	req.Header.Add("traceparent", v) // want "ad-hoc Header.Add of the Traceparent header"
	req.Header.Set(header, v)        // want "ad-hoc Header.Set of the Traceparent header"
}

// Decorate sets unrelated headers, which is fine, and one with a
// non-constant key, which the analyzer cannot (and should not) judge.
func Decorate(h http.Header, key, v string) {
	h.Set("Content-Type", "application/json")
	h.Add("Accept", "application/json")
	h.Set(key, v)
}

// Inspect only reads the header; reads are untouched.
func Inspect(h http.Header) string {
	return h.Get("Traceparent")
}
