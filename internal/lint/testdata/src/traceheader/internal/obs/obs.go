// Package obs stands in for the propagation implementation: the one
// owner allowed to write the Traceparent header raw.
package obs

import "net/http"

// TraceparentHeader is the canonical header name.
const TraceparentHeader = "Traceparent"

// InjectTrace writes the active span's coordinates onto an outgoing hop.
func InjectTrace(h http.Header, v string) {
	if v == "" {
		return
	}
	h.Set(TraceparentHeader, v)
}
