// Command tool shows that main packages are NOT exempt: a binary
// hand-writing the propagation header detaches traces just the same.
package main

import "net/http"

func main() {
	req, err := http.NewRequest(http.MethodGet, "http://localhost", nil)
	if err != nil {
		return
	}
	req.Header.Set("Traceparent", "00-0-0-01") // want "ad-hoc Header.Set of the Traceparent header"
	_ = req
}
