package mat

import "context"

// Apply consults cancellation inside numeric code: a dispatched batch
// must run to completion.
func Apply(ctx context.Context, xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if ctx.Err() != nil { // want "ctx.Err consults cancellation inside kernel-path code"
		return 0
	}
	return s
}

// Mint builds a cancellable context inside numeric code.
func Mint(ctx context.Context) context.Context {
	sub, cancel := context.WithCancel(ctx) // want "context.WithCancel mints a cancellable context"
	cancel()
	return sub
}

type spanKey struct{}

// Tag rides a span along: ctx.Value stays legal everywhere.
func Tag(ctx context.Context) interface{} {
	return ctx.Value(spanKey{})
}
