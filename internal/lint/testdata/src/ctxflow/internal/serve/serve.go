package serve

import (
	"context"
	"time"
)

type spanKey struct{}

// Deadline mints a deadline on the serve path; deadlines belong to the
// HTTP transport.
func Deadline(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, time.Second) // want "context.WithTimeout on the serve path"
}

// WithSpan only decorates the context: the span-carrying pattern.
func WithSpan(ctx context.Context) context.Context {
	return context.WithValue(ctx, spanKey{}, "span")
}

// Consult is legal here: the serve path may *check* cancellation it was
// handed (the transport owns the deadline); it may not mint its own.
func Consult(ctx context.Context) bool {
	return ctx.Err() != nil
}
