// Package work sits outside every static ctxflow scope; the rule
// reaches it only through the call graph.
package work

import "context"

// ProjectBatch is a hot entry by name prefix.
func ProjectBatch(ctx context.Context, xs []float64) float64 {
	return helper(ctx, xs)
}

// helper is inside the hot closure, so consulting cancellation here is
// a finding even though work is not a kernel package.
func helper(ctx context.Context, xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if ctx.Err() != nil { // want "ctx.Err consults cancellation inside kernel-path code"
		return 0
	}
	return s
}

// Cold is unreachable from any entry: cancellation is fine here.
func Cold(ctx context.Context) error { return ctx.Err() }
