package drops

import (
	"fmt"
	"os"
	"strings"
)

// Touch drops errors every way the analyzer distinguishes.
func Touch(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Sync()        // want "call discards its error result"
	defer f.Close() // want "deferred call discards its error result"

	_ = f.Sync() // explicit drop: allowed

	fmt.Println("ok") // fmt print family: allowlisted

	var b strings.Builder
	b.WriteString("fine") // strings.Builder writes never fail: allowlisted
	_ = b.String()

	n := len(path)
	_ = float64(n) // conversion, not a call with an error result
}
