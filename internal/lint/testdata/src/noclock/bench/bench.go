package bench

import "time"

// Stamp is allowed: timing lives in the layers that report it, outside
// the numeric packages.
func Stamp() time.Time { return time.Now() }
