package solver

import "time"

// Budget cuts off iteration on wall-clock time — exactly the
// load-dependent behavior the contract bans from numeric packages.
func Budget(limit time.Duration) int {
	start := time.Now() // want "time.Now in package"
	n := 0
	for time.Since(start) < limit { // want "time.Since in package"
		n++
	}
	return n
}
