package pool

import "time"

// Wait times a queue handoff with a raw clock read — the pool sits on
// the numeric call path and must use obs.Stamp instead.
func Wait() time.Duration {
	start := time.Now() // want "time.Now in package"
	return time.Since(start) // want "time.Since in package"
}
