package online

import "time"

// IntervalDue checks the refit interval against a raw clock read — the
// trainer must use the injected obs.Clock so the interval trigger is
// testable and deterministic.
func IntervalDue(last time.Time, every time.Duration) bool {
	return time.Since(last) >= every // want "time.Since in package"
}

// Stamp anchors the last-refit time from the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want "time.Now in package"
}
