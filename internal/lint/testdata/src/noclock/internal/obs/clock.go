package obs

import "time"

// Clock is allowed: internal/obs is the single sanctioned clock owner;
// everything on the numeric side records through the handles it vends.
type Clock func() time.Time

// NowStamp reads the wall clock on behalf of its consumers.
func NowStamp() time.Time { return time.Now() }
