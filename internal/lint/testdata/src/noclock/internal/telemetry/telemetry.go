package telemetry

import "time"

// SampleNow stamps an ingest from the wall clock directly — the
// telemetry store must take explicit times (or an injected obs.Clock)
// so scrapes replay deterministically under test.
func SampleNow() time.Time {
	return time.Now() // want "time.Now in package"
}

// PollEvery owns its own ticker — the tick source must belong to the
// caller (cmd/srdaserve in production, a hand-fed channel in tests).
func PollEvery(every time.Duration) <-chan time.Time {
	return time.NewTicker(every).C // want "time.NewTicker in package"
}

// IngestAt is the compliant shape: the time arrives as an argument and
// the package never reads the clock.
func IngestAt(now time.Time, v float64) (time.Time, float64) {
	return now, v
}

// EvaluateWith is the compliant clock-injection shape: calling an
// injected clock function value is not a package time read.
func EvaluateWith(clock func() time.Time) time.Time {
	return clock()
}

// InWindow does timestamp arithmetic with time.Time methods — After
// and Sub here are methods on values, not the package-level clock
// functions, and must not be flagged.
func InWindow(p, from, to time.Time) bool {
	return p.After(from) && !p.After(to) && to.Sub(from) > 0
}
