package randuse

import randv2 "math/rand/v2"

// PickV2 draws from the v2 global stream, which is just as unseeded.
func PickV2(n int) int {
	return randv2.IntN(n) // want "global math/rand call rand.IntN"
}

// SeededV2 builds an explicit PCG source and is allowed.
func SeededV2(seed uint64, n int) int {
	r := randv2.New(randv2.NewPCG(seed, seed))
	return r.IntN(n)
}
