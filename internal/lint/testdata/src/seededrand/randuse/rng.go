package randuse

import "math/rand"

// Shuffle contrasts a properly seeded source with global-stream calls.
func Shuffle(seed int64, xs []int) {
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })

	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand call rand.Shuffle"
	_ = rand.Intn(3)                                                      // want "global math/rand call rand.Intn"
}

// Zipf is allowed: rand.NewZipf takes the already-seeded *rand.Rand.
func Zipf(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.5, 1, 100)
	return z.Uint64()
}
