package blas

import (
	"math"
	"testing"
)

// TestParOkBitwise marks ParOk and ParScale as covered: this file
// mentions each kernel together with math.Float64bits.
func TestParOkBitwise(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	Ok(a)
	ParOk(b)
	Vec(a).Scale(2)
	Vec(b).ParScale(2)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("bitwise mismatch at %d", i)
		}
	}
}
