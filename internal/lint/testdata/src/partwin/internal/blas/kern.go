package blas

// ParFoo has neither a sequential twin nor an equivalence test.
func ParFoo(x []float64) { // want "has no sequential twin Foo" "has no Float64bits equivalence test"
	for i := range x {
		x[i] *= 2
	}
}

// ParBar has a twin but no bitwise test pairing it with Float64bits.
func ParBar(x []float64) { // want "has no Float64bits equivalence test"
	Bar(x)
}

// Bar is ParBar's sequential twin.
func Bar(x []float64) {
	for i := range x {
		x[i]++
	}
}

// ParOk is fully covered: twin below, bitwise test in kern_test.go.
func ParOk(x []float64) { Ok(x) }

// Ok is ParOk's sequential twin.
func Ok(x []float64) {
	for i := range x {
		x[i]--
	}
}

// Parse is not a parallel kernel despite the prefix; the next rune after
// "Par" is lowercase.
func Parse(s string) int { return len(s) }

// Vec exercises the method path of the analyzer.
type Vec []float64

// Scale is ParScale's sequential twin.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// ParScale is covered by kern_test.go.
func (v Vec) ParScale(a float64) { v.Scale(a) }

// ParShift has neither twin method nor test.
func (v Vec) ParShift(b float64) { // want "has no sequential twin Shift" "has no Float64bits equivalence test"
	for i := range v {
		v[i] += b
	}
}
