package sup

// Malformed suppressions: no analyzer, unknown analyzer, missing reason.
// TestSuppressCorpus asserts the exact diagnostics these produce.

//srdalint:ignore
func NoAnalyzer(a float64) bool { return a == 0 }

//srdalint:ignore nosuch because the analyzer name is checked
func Unknown(a float64) bool { return a == 1 }

//srdalint:ignore floatcmp
func NoReason(a float64) bool { return a == 2 }

// Stacked standalone suppressions both land on the first code line below
// the run, silencing two analyzers at once.  The hotalloc one covers a
// line hotalloc never fires on, so the staleness detector reports it.

//srdalint:ignore floatcmp exact sentinel comparison checked by the corpus test
//srdalint:ignore hotalloc deliberately stale for the corpus test
func Stacked(a float64) bool { return a == 3 }

// Trailing reaches only its own line.
func Trailing(a, b float64) bool {
	if a == 0 { //srdalint:ignore floatcmp exact-zero guard for the corpus test
		return true
	}
	return a == b
}
