// Package util holds helpers the kernel reaches through closures and
// method values.  util is outside every static analyzer scope — every
// finding below exists only because the call graph marks these
// functions hot.
package util

import (
	"math/rand"
	"time"
)

// RowScore is reached from the kernel only through the closure handed
// to pool.Do — exactly the edge an intraprocedural pass cannot see.
func RowScore(row, w, scratch []float64) float64 {
	var s float64
	for i := range row {
		scratch[i] = row[i] * w[i]
		s += scratch[i]
	}
	return s * drift()
}

// drift reads the clock two hops below the entry point.
func drift() float64 {
	return float64(time.Now().UnixNano())*0 + 1 // want "time.Now in util.drift is on the hot kernel path"
}

// Seeded draws from an explicitly seeded source — legal cold, banned
// anywhere in the hot closure.
func Seeded(r *rand.Rand) float64 {
	return r.Float64() // want "rand method call .* is inside the hot kernel closure"
}

// Bias allocates on every call: harmless cold, a per-iteration
// allocation when an innermost hot loop reaches it.
func Bias() float64 {
	buf := make([]float64, 1)
	return buf[0]
}

// Cold reads the clock but is unreachable from any entry: no finding.
func Cold() int64 { return time.Now().UnixNano() }
