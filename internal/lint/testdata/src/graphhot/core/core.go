// Package core is the corpus twin of the real model package: its
// PredictBatch/ProjectBatch surface is the hot-closure root.
package core

import (
	"math/rand"
	"time"

	"corpus/graphhot/internal/pool"
	"corpus/graphhot/util"
)

// Model mirrors the real repo's shape: batch entry points that shard
// work through the pool.
type Model struct {
	W    []float64
	rng  *rand.Rand
	rows [][]float64
	out  []float64
}

// NewModel threads the seed the way the contract requires.
func NewModel(w []float64, seed int64) *Model {
	return &Model{W: w, rng: rand.New(rand.NewSource(seed))}
}

// PredictBatch is a hot entry.  The closure handed to pool.Do inlines
// into this node, so util.RowScore (and through it util.drift) is hot;
// util.Seeded is hot one hop down; and the innermost loop's call to
// util.Bias reaches a per-iteration allocation the chain reporter must
// name.
func (m *Model) PredictBatch(rows [][]float64, out []float64) {
	scratch := make([]float64, len(m.W))
	jit := util.Seeded(m.rng)
	pool.Do(len(rows), func(i int) {
		out[i] = util.RowScore(rows[i], m.W, scratch) + jit
	})
	for i := range out {
		out[i] += util.Bias() // want "call inside an innermost loop of hot kernel .* reaches a per-iteration allocation: util.Bias allocates"
	}
}

// ProjectBatch hands a method value to the pool: the function-value
// edge must mark projectOne hot.
func (m *Model) ProjectBatch(rows [][]float64, out []float64) {
	m.rows, m.out = rows, out
	pool.Do(len(rows), m.projectOne)
}

// projectOne is hot purely through the method-value edge above.
func (m *Model) projectOne(i int) {
	m.out[i] = float64(time.Now().UnixNano()) * 0 // want "time.Now in .*projectOne is on the hot kernel path"
	for _, v := range m.rows[i] {
		m.out[i] += v
	}
}

// Report is cold: the same shapes produce no findings here.
func (m *Model) Report() float64 {
	buf := make([]float64, 1)
	buf[0] = float64(util.Cold())
	return buf[0]
}
