package pool

// Do is the corpus twin of the worker pool; the kernel hands it the
// per-shard closure whose callees the graph must mark hot.
func Do(n int, fn func(int)) {
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) { // want "unbounded number of goroutines"
			fn(i)
			done <- 0
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
