package online

// AsyncRefit is the corpus stand-in for the streaming trainer's async
// mode: internal/online is on the goroutine-owner allowlist, so the
// background refit goroutine is allowed.
func AsyncRefit(fit func()) chan struct{} {
	done := make(chan struct{})
	go func() {
		fit()
		close(done)
	}()
	return done
}
