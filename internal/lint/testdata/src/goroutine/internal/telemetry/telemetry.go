package telemetry

import "time"

// StartPoller is the corpus stand-in for the telemetry sampler:
// internal/telemetry is on the goroutine-owner allowlist, so draining
// a caller-owned tick channel from a background goroutine is allowed.
func StartPoller(ticks <-chan time.Time, fn func(time.Time)) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		for t := range ticks {
			fn(t)
		}
	}()
	return done
}
