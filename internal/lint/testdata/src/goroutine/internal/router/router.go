package router

// HealthLoop is the corpus stand-in for the serving router's background
// health sweep: internal/router owns replica-lifecycle goroutines, so a
// raw go statement here is allowed.
func HealthLoop(check func(), stop <-chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				check()
			}
		}
	}()
}
