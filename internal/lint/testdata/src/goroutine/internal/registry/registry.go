package registry

// Evict is the corpus stand-in for the model registry's bookkeeping:
// internal/registry is on the goroutine-owner allowlist, so a raw go
// statement here is allowed.
func Evict(victims []string, drop func(string)) {
	done := make(chan struct{})
	go func() {
		for _, v := range victims {
			drop(v)
		}
		close(done)
	}()
	<-done
}
