package pool

// Do is the corpus stand-in for the real worker pool: this package is the
// one place library goroutines are allowed to start.
func Do(n int, fn func(int)) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func(i int) { // want "unbounded number of goroutines"
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
