// Command tool shows that main packages own their process lifecycle and
// may start goroutines directly.
package main

func main() {
	ch := make(chan int)
	go func() { ch <- 1 }()
	<-ch
}
