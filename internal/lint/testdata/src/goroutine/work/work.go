package work

// Fan spawns raw goroutines in a library package, bypassing the pool's
// deadlock-free handoff and worker budget.
func Fan(n int, fn func(int)) {
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) { // want "raw go statement in library package"
			fn(i)
			done <- struct{}{}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}
