package lint

import (
	"go/ast"
	"go/types"
)

// MapRange bans iterating a Go map wherever the iteration can feed
// deterministic output.  Go randomizes map iteration order per run on
// purpose, so a `for k := range m` that writes metrics exposition, model
// serialization, routing decisions, refit ordering, or any other output
// the repo pins with golden tests is a nondeterminism bug waiting for a
// second map entry.  The fix is always the same shape: collect the keys,
// sort them, and range over the slice — which is how every exposition
// path in internal/obs is written.
//
// Scope: the packages whose outputs are contractually deterministic
// (internal/obs exposition, internal/serve responses, internal/registry
// and internal/router placement, internal/online refit ordering,
// internal/core and the root package's model serialization), plus —
// through the call graph — any hot-closure function in any package.
// Iterations that are genuinely order-insensitive (summing values,
// building another map, collect-then-sort) carry
// //srdalint:ignore maprange <reason>.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "no map iteration on deterministic-output paths unless the keys are sorted first",
	Run:  runMapRange,
}

// deterministicDirs are the packages whose outputs must be reproducible
// byte for byte: exposition, serialization, routing, refit ordering.
// "" is the root package (model save/load).
var deterministicDirs = []string{
	"",
	"internal/obs", "internal/serve", "internal/registry",
	"internal/router", "internal/online", "internal/core",
	"internal/telemetry",
}

func runMapRange(pass *Pass) {
	info := pass.Pkg.Info
	check := func(n ast.Node) bool {
		r, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := info.Types[r.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		pass.Reportf(r.Pos(), "map iteration order is randomized per run and package %s feeds deterministic output; collect the keys into a slice, sort, and range over that — or annotate why order cannot matter here", pass.Pkg.Path)
		return true
	}
	if underAny(pass.Pkg.RelDir, deterministicDirs) {
		pass.inspectFiles(check)
		return
	}
	// Outside the static scope, the call graph extends the rule to hot
	// functions: a map range inside a kernel's reach perturbs outputs
	// the equivalence suites hold bitwise.
	for _, n := range pass.hotNodes() {
		ast.Inspect(n.Decl.Body, check)
	}
}
