package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces the context contract PR 5 established in prose:
// contexts on the serving and kernel paths carry *spans only*, never
// cancellation.  A dispatched batch runs to completion — cancelling
// mid-kernel would tear the bitwise par/seq equivalence (some shards
// computed, some not) and leave pool accounting wrong — and the serving
// tier's deadline handling lives at the HTTP layer, not inside the
// numeric code.  Three rules:
//
//   - No cancellation-sensitive calls (ctx.Done, ctx.Err, ctx.Deadline)
//     in the numeric packages, internal/pool, or anywhere in the hot
//     kernel closure.  ctx.Value stays legal: that is how obs spans ride
//     along.
//   - No cancellable context construction (context.WithCancel /
//     WithTimeout / WithDeadline and their Cause variants) in those same
//     places or in the serve-path packages (serve, registry, router,
//     online).  Deadlines belong to the transport; if a serve-path
//     component genuinely needs one, the suppression states why.
//   - No unbounded goroutine spawns: inside the goroutine-owner packages
//     (the only library packages allowed to use go at all), a go
//     statement lexically inside a loop spawns per iteration with no
//     ceiling.  Bounded spawn loops — the pool's fixed worker set, one
//     goroutine per configured replica — annotate the bound as the
//     suppression reason.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "serve/kernel contexts carry spans only: no cancellation in kernels, no cancellable contexts on the serve path, no go-in-loop spawns",
	Run:  runCtxFlow,
}

// cancelSensitive are the context.Context methods that make behavior
// depend on cancellation state.
var cancelSensitive = map[string]bool{"Done": true, "Err": true, "Deadline": true}

// cancelConstructors are the context constructors that mint cancellable
// or deadline-bearing contexts.
var cancelConstructors = map[string]bool{
	"WithCancel": true, "WithTimeout": true, "WithDeadline": true,
	"WithCancelCause": true, "WithTimeoutCause": true, "WithDeadlineCause": true,
}

// servePathDirs are the serving-tier packages whose contexts must stay
// span-only.
var servePathDirs = []string{
	"internal/serve", "internal/registry", "internal/router", "internal/online",
}

// kernelCtxScope reports whether pkg is numeric-side code where even
// consulting cancellation is banned.
func kernelCtxScope(pkg *Package) bool {
	return isNumericPkg(pkg) || underAny(pkg.RelDir, []string{"internal/pool"})
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info

	ctxFunc := func(n ast.Node) (*types.Func, ast.Expr) {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return nil, nil
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return nil, nil
		}
		return fn, sel
	}
	checkCancelUse := func(n ast.Node) bool {
		fn, at := ctxFunc(n)
		if fn == nil {
			return true
		}
		sig := fn.Type().(*types.Signature)
		if sig.Recv() != nil && cancelSensitive[fn.Name()] {
			pass.Reportf(at.Pos(), "ctx.%s consults cancellation inside kernel-path code; contexts here carry spans only — a dispatched batch always runs to completion, and deadlines belong to the transport layer", fn.Name())
		}
		if sig.Recv() == nil && cancelConstructors[fn.Name()] {
			pass.Reportf(at.Pos(), "context.%s mints a cancellable context inside kernel-path code; contexts here carry spans only", fn.Name())
		}
		return true
	}

	switch {
	case kernelCtxScope(pass.Pkg):
		pass.inspectFiles(checkCancelUse)
	case underAny(pass.Pkg.RelDir, servePathDirs):
		pass.inspectFiles(func(n ast.Node) bool {
			fn, at := ctxFunc(n)
			if fn == nil {
				return true
			}
			if sig := fn.Type().(*types.Signature); sig.Recv() == nil && cancelConstructors[fn.Name()] {
				pass.Reportf(at.Pos(), "context.%s on the serve path: request contexts carry spans only, and deadlines live at the HTTP transport; if this component truly owns a deadline, say why in a suppression", fn.Name())
			}
			return true
		})
	default:
		// Elsewhere, the rule follows the call graph: hot-closure
		// functions may not consult cancellation no matter where they
		// are declared.
		for _, n := range pass.hotNodes() {
			ast.Inspect(n.Decl.Body, checkCancelUse)
		}
	}

	// Unbounded spawns: a go statement inside a loop in the goroutine
	// owner packages (everywhere else raw go is already a
	// goroutine-discipline finding).
	if underAny(pass.Pkg.RelDir, goroutineOwners) {
		for _, f := range pass.Pkg.Files {
			var loopDepth int
			var walk func(n ast.Node)
			walk = func(n ast.Node) {
				ast.Inspect(n, func(x ast.Node) bool {
					if x == n {
						return true
					}
					switch s := x.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						loopDepth++
						walk(s)
						loopDepth--
						return false
					case *ast.GoStmt:
						if loopDepth > 0 {
							pass.Reportf(s.Pos(), "go statement inside a loop spawns an unbounded number of goroutines; bound the fan-out (fixed worker set, per-replica) and annotate the bound, or hand the work to internal/pool")
						}
					}
					return true
				})
			}
			walk(f)
		}
	}
}
