package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regexes from a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the retained source lines of every corpus file for
// `// want "regex"...` comments.  A want comment expects one diagnostic
// per quoted pattern on its own line, in any order.
func collectWants(t *testing.T, mod *Module) []*expectation {
	t.Helper()
	var wants []*expectation
	for file, lines := range mod.Sources {
		for i, line := range lines {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			ms := wantRe.FindAllStringSubmatch(line[idx+len("// want "):], -1)
			if len(ms) == 0 {
				t.Errorf("%s:%d: want comment with no quoted pattern", file, i+1)
				continue
			}
			for _, m := range ms {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Errorf("%s:%d: bad want pattern %q: %v", file, i+1, m[1], err)
					continue
				}
				wants = append(wants, &expectation{file: file, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against expectations one-to-one: every
// diagnostic must satisfy a pending want on its file:line, and every want
// must be consumed.
func checkWants(t *testing.T, mod *Module, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(t, mod)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.re == nil || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic %s:%d:%d: %s (%s)",
				relCorpus(mod, d.File), d.Line, d.Col, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if w.re != nil {
			t.Errorf("no diagnostic matched want %q at %s:%d",
				w.re.String(), relCorpus(mod, w.file), w.line)
		}
	}
}

func relCorpus(mod *Module, file string) string {
	if r, err := filepath.Rel(mod.Root, file); err == nil {
		return r
	}
	return file
}

// loadCorpus loads one testdata/src tree as its own module.
func loadCorpus(t *testing.T, name string) *Module {
	t.Helper()
	mod, err := Load(filepath.Join("testdata", "src", name), "corpus/"+name)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", name, err)
	}
	return mod
}

// TestCorpus runs the full suite over each analyzer's corpus tree and
// matches the diagnostics against the `// want` comments in the sources.
func TestCorpus(t *testing.T) {
	for _, name := range []string{
		"goroutine", "floatcmp", "seededrand", "partwin",
		"hotalloc", "noclock", "errdrop", "rawlog",
		"maprange", "lockcheck", "ctxflow", "graphhot",
		"traceheader",
	} {
		t.Run(name, func(t *testing.T) {
			mod := loadCorpus(t, name)
			checkWants(t, mod, Run(mod, Analyzers))
		})
	}
}

// TestSuppressCorpus pins down the suppression semantics exactly:
// malformed comments are findings and silence nothing, stacked standalone
// suppressions cover the first code line below the run, a trailing
// suppression covers only its own line, and a well-formed suppression
// whose analyzer never fires on the covered line is reported stale.
// Want comments cannot annotate malformed suppressions (any trailing
// text would become the missing reason), so this corpus is asserted by
// explicit position.
func TestSuppressCorpus(t *testing.T) {
	mod := loadCorpus(t, "suppress")
	diags := Run(mod, Analyzers)
	expected := []struct {
		line     int
		analyzer string
		substr   string
	}{
		{6, "suppress", "needs an analyzer name and a reason"},
		{7, "floatcmp", "compares floating-point values exactly"},
		{9, "suppress", "unknown analyzer nosuch"},
		{10, "floatcmp", "compares floating-point values exactly"},
		{12, "suppress", "floatcmp needs a reason"},
		{13, "floatcmp", "compares floating-point values exactly"},
		{20, "suppress", "stale suppression: hotalloc no longer fires"},
		{28, "floatcmp", "compares floating-point values exactly"},
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d %s %s", d.Line, d.Analyzer, d.Message))
	}
	if len(diags) != len(expected) {
		t.Fatalf("got %d diagnostics, expected %d:\n%s",
			len(diags), len(expected), strings.Join(got, "\n"))
	}
	for i, e := range expected {
		d := diags[i]
		if d.Line != e.line || d.Analyzer != e.analyzer || !strings.Contains(d.Message, e.substr) {
			t.Errorf("diagnostic %d: got %d %s %q, expected line %d %s containing %q",
				i, d.Line, d.Analyzer, d.Message, e.line, e.analyzer, e.substr)
		}
	}
}

// TestAnalyzerRegistry checks the suite wiring the driver depends on.
func TestAnalyzerRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q is missing a name, doc, or run function", a.Name)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if AnalyzerByName(a.Name) != a {
			t.Errorf("AnalyzerByName(%q) does not round-trip", a.Name)
		}
	}
	if AnalyzerByName("nosuch") != nil {
		t.Error("AnalyzerByName accepts unknown names")
	}
	if len(Analyzers) != 12 {
		t.Errorf("suite has %d analyzers, expected 12", len(Analyzers))
	}
}

// TestLoadCorpusShape checks the loader's package discovery and policy
// classification on the goroutine corpus tree.
func TestLoadCorpusShape(t *testing.T) {
	mod := loadCorpus(t, "goroutine")
	if mod.Path != "corpus/goroutine" {
		t.Errorf("module path = %q", mod.Path)
	}
	for rel, wantName := range map[string]string{
		"work":          "work",
		"internal/pool": "pool",
		"cmd/tool":      "main",
	} {
		p := mod.PackageAt(rel)
		if p == nil {
			t.Fatalf("package at %q not loaded", rel)
		}
		if p.Name != wantName {
			t.Errorf("package at %q named %q, expected %q", rel, p.Name, wantName)
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("package at %q not type-checked", rel)
		}
	}
	if isKernelPkg(mod.PackageAt("work")) {
		t.Error("work misclassified as a kernel package")
	}
	for _, owner := range []string{
		"internal/pool", "internal/serve", "internal/router", "internal/registry",
		"internal/online", "internal/telemetry",
	} {
		if !underAny(owner, goroutineOwners) {
			t.Errorf("%s not recognized as a goroutine owner", owner)
		}
	}
	if !underAny("internal/telemetry", noClockExtraDirs) {
		t.Error("internal/telemetry not under the noclock ban")
	}
	if underAny("internal/mat", goroutineOwners) {
		t.Error("internal/mat recognized as a goroutine owner")
	}
}
