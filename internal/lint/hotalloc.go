package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"

	"srda/internal/lint/graph"
)

// HotAlloc bans allocation in the innermost loops of the hot paths.  The
// linear-time claim is an O(nnz)/O(mn) *arithmetic* bound; a make,
// append, new, composite literal, or fmt call inside the innermost loop
// turns it into an allocation bound and hands the hot path to the
// garbage collector.  Buffers must be hoisted to the kernel prologue or
// passed in by the caller, which is how every existing kernel is written.
//
// The analyzer fires in two modes:
//
//   - Intraprocedural, over every function in the kernel packages
//     (internal/blas, internal/mat, internal/sparse): any allocating
//     construct in an innermost loop body is a finding, exactly as in
//     PR 3.
//   - Interprocedural, over the hot closure (every function the
//     call graph reaches from the kernel entry points — the full
//     batch-predict path PredictBatch*/ProjectBatch* and Ctx variants,
//     the Par* kernels, and the LSQR/Cholesky inner solves).  Hot
//     functions outside the kernel packages get the same innermost-loop
//     discipline, and — the part no intraprocedural pass can see — a
//     call inside an innermost hot loop to a function that transitively
//     allocates (make/append/new, fmt, a closure, a heap-bound composite)
//     is reported at the call site with the offending chain.
//
// "Innermost" means a for/range statement whose body contains no other
// loop (closures are walked too: a loop inside a func literal is a loop).
// Allocations in outer loops — per-shard scratch in a pool.Do callback,
// say — are fine.  Deliberate exceptions (amortized builder appends, cold
// String methods, O(iters) solver-driver closures) carry
// //srdalint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no allocations in innermost kernel loops, directly or through any call chain",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	info := pass.Pkg.Info
	if isKernelPkg(pass.Pkg) {
		pass.inspectFiles(func(n ast.Node) bool {
			body := loopBody(n)
			if body == nil || containsLoop(body) {
				return true
			}
			checkInnermost(pass, info, body)
			return true
		})
	}
	// Interprocedural: hot functions declared in this package.
	g := pass.graphOf()
	mod := pass.Module
	for _, n := range pass.hotNodes() {
		for _, body := range innermostLoopBodies(n) {
			// Hot functions outside the kernel packages get the same
			// innermost-loop discipline the kernel packages always had
			// (inside them the file walk above already covers it).
			if !isKernelPkg(pass.Pkg) {
				checkInnermost(pass, info, body)
			}
			// Calls inside an innermost hot loop must not reach an
			// allocation anywhere down the chain.
			for _, e := range edgesWithin(n, body) {
				path, target := g.Find(e.Callee, func(t *graph.Node) bool {
					return mod.ensureInterproc().allocOf(t) != nil
				})
				if target == nil {
					continue
				}
				alloc := mod.ensureInterproc().allocOf(target)
				at := mod.Fset.Position(alloc.pos)
				pass.Reportf(e.Pos, "call inside an innermost loop of hot kernel %s reaches a per-iteration allocation: %s allocates (%s, %s:%d); hoist the buffer, preallocate in the prologue, or move the call out of the loop",
					mod.funcDisplayName(n.Func),
					mod.chainString(e.Callee, path), alloc.what,
					filepath.Base(at.Filename), at.Line)
			}
		}
	}
}

// loopBody returns the body of a for/range statement, or nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// containsLoop reports whether the block contains any nested loop.
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if loopBody(n) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkInnermost reports every allocating construct inside the body of an
// innermost loop.
func checkInnermost(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "append", "new":
						pass.Reportf(e.Pos(), "%s inside an innermost kernel loop allocates per iteration; hoist the buffer to the kernel prologue or take it from the caller", b.Name())
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					pass.Reportf(e.Pos(), "fmt.%s inside an innermost kernel loop allocates and formats per iteration; move it out of the hot path", fn.Name())
				}
			}
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(), "composite literal inside an innermost kernel loop allocates per iteration; hoist it out of the hot path")
			return false
		}
		return true
	})
}
