package lint

import (
	"go/ast"
	"go/types"
)

// HotAlloc bans allocation in the innermost loops of the kernel packages
// (internal/blas, internal/mat, internal/sparse).  The linear-time claim
// is an O(nnz)/O(mn) *arithmetic* bound; a make, append, new, composite
// literal, or fmt call inside the innermost loop turns it into an
// allocation bound and hands the hot path to the garbage collector.
// Buffers must be hoisted to the kernel prologue or passed in by the
// caller, which is how every existing kernel is written.
//
// "Innermost" means a for/range statement whose body contains no other
// loop (closures are walked too: a loop inside a func literal is a loop).
// Allocations in outer loops — per-shard scratch in a pool.Do callback,
// say — are fine.  Deliberate exceptions (amortized builder appends, cold
// String methods) carry //srdalint:ignore hotalloc <reason>.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "no make/append/new/composite-literal/fmt allocations in innermost kernel loops",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if !isKernelPkg(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		body := loopBody(n)
		if body == nil || containsLoop(body) {
			return true
		}
		checkInnermost(pass, info, body)
		return true
	})
}

// loopBody returns the body of a for/range statement, or nil.
func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// containsLoop reports whether the block contains any nested loop.
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if loopBody(n) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// checkInnermost reports every allocating construct inside the body of an
// innermost loop.
func checkInnermost(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "append", "new":
						pass.Reportf(e.Pos(), "%s inside an innermost kernel loop allocates per iteration; hoist the buffer to the kernel prologue or take it from the caller", b.Name())
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					pass.Reportf(e.Pos(), "fmt.%s inside an innermost kernel loop allocates and formats per iteration; move it out of the hot path", fn.Name())
				}
			}
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(), "composite literal inside an innermost kernel loop allocates per iteration; hoist it out of the hot path")
			return false
		}
		return true
	})
}
