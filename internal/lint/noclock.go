package lint

import (
	"go/ast"
	"go/types"
)

// NoClock bans wall-clock reads in the numeric packages.  A kernel or
// solver that consults time.Now — for an adaptive cutoff, a progress
// heuristic, a "give up after N seconds" guard — produces results that
// depend on machine load, which is exactly the nondeterminism the
// equivalence suites cannot catch (both twins would wobble together).
// Timing lives in the layers that report it: cmd/srdabench, the
// experiment runner, the serving metrics.  Test files are not checked.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc:  "no time.Now/time.Since (or timers) inside numeric packages",
	Run:  runNoClock,
}

// clockFuncs are the package time entry points that read or depend on the
// wall clock or scheduler.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

func runNoClock(pass *Pass) {
	if !isNumericPkg(pass.Pkg) {
		return
	}
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(), "time.%s in numeric package %s makes results depend on wall-clock timing; measure in cmd/srdabench or the experiment layer instead", fn.Name(), pass.Pkg.Path)
		return true
	})
}
