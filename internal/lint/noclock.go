package lint

import (
	"go/ast"
	"go/types"
)

// NoClock bans wall-clock reads on the numeric side of the repo.  A
// kernel or solver that consults time.Now — for an adaptive cutoff, a
// progress heuristic, a "give up after N seconds" guard — produces
// results that depend on machine load, which is exactly the
// nondeterminism the equivalence suites cannot catch (both twins would
// wobble together).
//
// Since the interprocedural engine landed, the ban also follows call
// chains: a function in *any* package that the call graph reaches from a
// kernel entry point (the hot closure) may not read the clock either,
// because a helper becomes numeric code the moment a kernel calls it.
//
// internal/obs is the single sanctioned clock owner: it wraps the clock
// behind injectable obs.Clock values and hands out obs.Trace spans and
// obs.Stamp marks that instrumented code records into without ever
// touching package time.  The scope of the ban is every numeric package
// plus internal/pool (which times queue waits through obs.Stamp); other
// timing lives in the layers that report it — cmd/srdabench, the
// experiment runner, the serving metrics.  Test files are not checked.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc:  "no time.Now/time.Since (or timers) outside internal/obs on the numeric side",
	Run:  runNoClock,
}

// clockOwners are the packages sanctioned to read the wall clock within
// the noclock scope.  Keep this to internal/obs: adding a package here
// means its outputs may legitimately depend on when they ran.
var clockOwners = []string{"internal/obs"}

// noClockExtraDirs extends the ban beyond the numeric packages to the
// infrastructure on the numeric call path, which must route timing
// through internal/obs instead of reading the clock itself.  The
// streaming trainer (internal/online) is here because its interval
// trigger must fire off an injected obs.Clock — a direct time.Now would
// make refit timing untestable and nondeterministic.  The telemetry
// plane (internal/telemetry) is here because its whole contract is
// byte-deterministic replay: ingest, federation, and SLO evaluation
// take explicit times or an injected obs.Clock, and the sampler
// consumes a tick channel its caller owns.
var noClockExtraDirs = []string{"internal/pool", "internal/obs", "internal/online", "internal/telemetry"}

// inNoClockScope reports whether pkg is subject to the wall-clock ban.
func inNoClockScope(pkg *Package) bool {
	if underAny(pkg.RelDir, clockOwners) {
		return false
	}
	return isNumericPkg(pkg) || underAny(pkg.RelDir, noClockExtraDirs)
}

// clockFuncs are the package time entry points that read or depend on the
// wall clock or scheduler.
var clockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
	"Sleep":     true,
}

// isClockRead reports whether fn is a banned package-level clock entry
// point.  Methods are excluded on purpose: t.After(u), t.Sub(u) and
// friends on a time.Time value are pure timestamp arithmetic — only
// the package functions (time.After, time.Now, ...) touch the wall
// clock or scheduler, and sharing a name with a method must not drag
// the method into the ban.
func isClockRead(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "time" || !clockFuncs[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

func runNoClock(pass *Pass) {
	info := pass.Pkg.Info
	if inNoClockScope(pass.Pkg) {
		pass.inspectFiles(func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || !isClockRead(fn) {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s in package %s makes results depend on wall-clock timing; internal/obs owns the clock — record through obs.Trace/obs.Stamp, or measure in cmd/srdabench or the experiment layer", fn.Name(), pass.Pkg.Path)
			return true
		})
		return
	}
	// Interprocedural: a package outside the static scope still may not
	// read the clock from a function the kernel entry points reach — a
	// helper in any package becomes numeric code the moment a hot kernel
	// calls it.  internal/obs stays the sanctioned owner.
	if underAny(pass.Pkg.RelDir, clockOwners) {
		return
	}
	mod := pass.Module
	for _, n := range pass.hotNodes() {
		for _, site := range clockReads(info, n) {
			pass.Reportf(site.pos, "%s in %s is on the hot kernel path (reachable from entry %s); results would depend on wall-clock timing — record through obs.Trace/obs.Stamp or move the timing to the caller",
				site.what, mod.funcDisplayName(n.Func), mod.funcDisplayName(n.HotVia.Func))
		}
	}
}
