package lint

import (
	"go/ast"
	"go/types"
)

// ErrDrop flags call statements (including deferred calls) whose returned
// error is silently discarded.  A swallowed error in the training or
// serving path turns an I/O failure into a silently wrong model.  Where
// dropping really is the right call — best-effort cleanup on an already-
// failing path — write `_ = f()` so the decision is visible in the diff.
//
// Allowlisted as never worth checking: the fmt print family (stdout is
// best-effort everywhere in this repo) and writes to strings.Builder /
// bytes.Buffer, which are documented never to fail.  Test files are not
// checked.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently discarded error returns; use an explicit `_ =` where intentional",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	info := pass.Pkg.Info
	check := func(call *ast.CallExpr, deferred bool) {
		if tv, ok := info.Types[call.Fun]; !ok || tv.IsType() {
			return // conversion, or something go/types gave up on
		}
		sig, ok := info.Types[call.Fun].Type.Underlying().(*types.Signature)
		if !ok {
			return // builtin
		}
		if !returnsError(sig) || errDropAllowed(info, call) {
			return
		}
		kind := "call"
		if deferred {
			kind = "deferred call"
		}
		pass.Reportf(call.Pos(), "%s discards its error result; handle it or make the drop explicit with `_ =`", kind)
	}
	pass.inspectFiles(func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				check(call, false)
			}
		case *ast.DeferStmt:
			check(s.Call, true)
		}
		return true
	})
}

// returnsError reports whether any result of sig is the error type.
func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// errDropAllowed reports whether the callee is on the never-check
// allowlist: fmt's print family, or methods of strings.Builder and
// bytes.Buffer whose errors are documented to be always nil.
func errDropAllowed(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
