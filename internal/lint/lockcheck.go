package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockCheck enforces two mutex disciplines across the whole module:
//
//  1. No lock value is ever copied.  A copied sync.Mutex (or RWMutex,
//     WaitGroup, Once, Cond — or any struct or array containing one)
//     forks the lock state: the copy guards nothing, and go vet's
//     copylocks cannot be suppressed per-site with a reviewed reason the
//     way this suite requires.  Flagged shapes: value receivers and
//     value parameters of lock-containing types, assignments that copy
//     an existing lock-containing value, and range clauses that copy
//     lock-containing elements.
//
//  2. No mutex is held across a blocking operation or a hot-kernel
//     invocation.  A channel send/receive, a select, time.Sleep, a
//     WaitGroup.Wait, an outbound HTTP call — or a PredictBatch-class
//     kernel that runs for milliseconds — executed between Lock and
//     Unlock stalls every contender and, in the serving tier, turns one
//     slow request into a convoy.  The tracking is lexical and
//     per-function: a Lock (or RLock) on some receiver marks it held
//     until the matching Unlock in the same statement sequence; a
//     deferred Unlock holds it to function end, so everything after the
//     Lock is "under" it.  Snapshot-under-lock-then-compute is the
//     sanctioned pattern (and what registry/serve already do).
//
// Intentional exceptions — a deliberately-held lock around a bounded
// handoff, say — carry //srdalint:ignore lockcheck <reason>.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc:  "no copied lock values; no mutex held across blocking calls, channel ops, or hot kernels",
	Run:  runLockCheck,
}

// syncLockTypes are the sync types whose values must never be copied.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsLockType reports whether a value of type t embeds lock state
// (directly, in a struct field, or in an array element).  Pointers,
// slices, maps, and channels reference rather than embed, so they are
// fine to copy.
func containsLockType(t types.Type) bool {
	return lockTypeWalk(t, make(map[types.Type]bool))
}

func lockTypeWalk(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
		return lockTypeWalk(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if lockTypeWalk(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return lockTypeWalk(u.Elem(), seen)
	}
	return false
}

func runLockCheck(pass *Pass) {
	info := pass.Pkg.Info
	runCopyLocks(pass, info)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				checkHeldAcross(pass, info, fd)
			}
		}
	}
}

// ---- rule 1: copied lock values ----

func runCopyLocks(pass *Pass, info *types.Info) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLockType(tv.Type) {
				pass.Reportf(field.Pos(), "%s passes %s by value, copying its lock state; take a pointer instead", what, types.TypeString(tv.Type, types.RelativeTo(pass.Pkg.Types)))
			}
		}
	}
	copiesLock := func(e ast.Expr) bool {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			// Composite literals construct rather than copy, and calls
			// are the callee's problem (flagged at its declaration).
			return false
		}
		tv, ok := info.Types[e]
		if !ok {
			return false
		}
		return containsLockType(tv.Type)
	}
	pass.inspectFiles(func(n ast.Node) bool {
		switch d := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(d.Recv, "receiver")
			checkFieldList(d.Type.Params, "parameter")
		case *ast.FuncLit:
			checkFieldList(d.Type.Params, "parameter")
		case *ast.AssignStmt:
			for _, rhs := range d.Rhs {
				if copiesLock(rhs) {
					pass.Reportf(rhs.Pos(), "assignment copies a value containing lock state; share it through a pointer")
				}
			}
		case *ast.RangeStmt:
			if d.Value != nil {
				// A `:=`-defined range variable lives in Defs, not Types.
				var t types.Type
				if tv, ok := info.Types[d.Value]; ok {
					t = tv.Type
				} else if id, ok := d.Value.(*ast.Ident); ok {
					if obj := info.Defs[id]; obj != nil {
						t = obj.Type()
					} else if obj := info.Uses[id]; obj != nil {
						t = obj.Type()
					}
				}
				if t != nil && containsLockType(t) {
					pass.Reportf(d.Value.Pos(), "range copies lock-containing elements by value; iterate indices or pointers instead")
				}
			}
		}
		return true
	})
}

// ---- rule 2: mutex held across blocking operations ----

// lockMethods classifies the sync locking entry points.
var lockAcquire = map[string]bool{"Lock": true, "RLock": true}
var lockRelease = map[string]string{"Unlock": "Lock", "RUnlock": "RLock"}

// blockingStdlib maps (package path, function/method name) pairs to a
// short description of why the call can block.  Deliberately small:
// these are the shapes that actually appear on this repo's serving and
// training paths.
type blockingKey struct{ pkg, name string }

var blockingStdlib = map[blockingKey]string{
	{"time", "Sleep"}:                 "time.Sleep",
	{"sync", "Wait"}:                  "sync Wait",
	{"net/http", "Get"}:               "outbound HTTP call",
	{"net/http", "Post"}:              "outbound HTTP call",
	{"net/http", "PostForm"}:          "outbound HTTP call",
	{"net/http", "Head"}:              "outbound HTTP call",
	{"net/http", "Do"}:                "outbound HTTP call",
	{"net", "Dial"}:                   "network dial",
	{"net", "DialTimeout"}:            "network dial",
	{"os/exec", "Run"}:                "subprocess wait",
	{"os/exec", "Wait"}:               "subprocess wait",
	{"os/exec", "Output"}:             "subprocess wait",
	{"os/exec", "CombinedOutput"}:     "subprocess wait",
}

// heldState tracks which lock expressions are currently held, keyed by
// the rendered receiver expression ("s.mu", "v.rw").
type heldState map[string]token.Pos

func (h heldState) clone() heldState {
	c := make(heldState, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// lockOp decodes a statement-level call on a sync lock: x.Lock(),
// x.RLock(), x.Unlock(), x.RUnlock().  Returns the rendered receiver
// key and the method name.
func lockOp(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	name := fn.Name()
	if !lockAcquire[name] {
		if _, rel := lockRelease[name]; !rel {
			return "", "", false
		}
	}
	return types.ExprString(sel.X), name, true
}

// checkHeldAcross walks one function body statement by statement,
// tracking held locks and flagging blocking operations under them.
func checkHeldAcross(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	g := pass.graphOf()
	mod := pass.Module

	// flagBlocking scans one statement's expressions for operations that
	// can block, skipping nested function literals (their bodies run
	// later, not under this lock... unless invoked here, which the
	// literal's own statement walk would need to see — accepted miss).
	flagBlocking := func(stmt ast.Stmt, held heldState) {
		// Name the earliest-acquired lock in the finding; min-by-position
		// keeps the message deterministic regardless of map order.
		var heldKey string
		var heldPos token.Pos
		for k, p := range held {
			if heldKey == "" || p < heldPos || (p == heldPos && k < heldKey) {
				heldKey, heldPos = k, p
			}
		}
		report := func(pos token.Pos, what string) {
			pass.Reportf(pos, "%s while holding %s (locked at line %d); release the lock first or snapshot under it and compute after — a held mutex across a blocking operation stalls every contender",
				what, heldKey, mod.Fset.Position(heldPos).Line)
		}
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				// The spawned goroutine does not block this one.
				return false
			case *ast.SendStmt:
				report(e.Pos(), "channel send")
			case *ast.UnaryExpr:
				if e.Op == token.ARROW {
					report(e.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				report(e.Pos(), "select")
				return false
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
					if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
						if what, ok := blockingStdlib[blockingKey{fn.Pkg().Path(), fn.Name()}]; ok {
							report(e.Pos(), what)
							return true
						}
						if node := g.NodeOf(fn); node != nil && node.Entry {
							report(e.Pos(), "hot kernel "+mod.funcDisplayName(fn)+" invoked")
							return true
						}
					}
				}
				if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
					if fn, ok := info.Uses[id].(*types.Func); ok {
						if node := g.NodeOf(fn); node != nil && node.Entry {
							report(e.Pos(), "hot kernel "+mod.funcDisplayName(fn)+" invoked")
						}
					}
				}
			}
			return true
		})
	}

	var walk func(stmts []ast.Stmt, held heldState)
	walk = func(stmts []ast.Stmt, held heldState) {
		for _, stmt := range stmts {
			switch s := stmt.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					if key, method, ok := lockOp(info, call); ok {
						if lockAcquire[method] {
							held[key] = call.Pos()
						} else {
							delete(held, key)
						}
						continue
					}
				}
				if len(held) > 0 {
					flagBlocking(s, held)
				}
			case *ast.DeferStmt:
				// defer x.Unlock(): held to function end by design; the
				// lock stays in the held set so everything after the
				// acquire is checked.  Other defers are not "under" the
				// lock at this point — skip them.
				continue
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt}, held)
			case *ast.BlockStmt:
				walk(s.List, held)
			case *ast.IfStmt:
				if len(held) > 0 {
					if s.Init != nil {
						flagBlocking(s.Init, held)
					}
					flagBlocking(&ast.ExprStmt{X: s.Cond}, held)
				}
				walk(s.Body.List, held.clone())
				if s.Else != nil {
					walk([]ast.Stmt{s.Else}, held.clone())
				}
			case *ast.ForStmt:
				if len(held) > 0 && s.Cond != nil {
					flagBlocking(&ast.ExprStmt{X: s.Cond}, held)
				}
				walk(s.Body.List, held.clone())
			case *ast.RangeStmt:
				if len(held) > 0 {
					flagBlocking(&ast.ExprStmt{X: s.X}, held)
				}
				walk(s.Body.List, held.clone())
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, held.clone())
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, held.clone())
					}
				}
			case *ast.SelectStmt:
				if len(held) > 0 {
					flagBlocking(s, held)
				}
			default:
				if len(held) > 0 {
					flagBlocking(stmt, held)
				}
			}
		}
	}
	walk(fd.Body.List, make(heldState))
}
