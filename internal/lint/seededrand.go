package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand bans the global math/rand generator in non-test code.  Every
// random choice in this repository — CV splits, k-means inits, synthetic
// datasets — must come from a rand.New(rand.NewSource(seed)) source whose
// seed is threaded from Options or flags, so experiments replay bit-for-
// bit and the paper tables are reproducible.  The package-level rand
// functions (rand.Intn, rand.Float64, rand.Perm, ...) draw from a shared,
// effectively unseeded stream whose sequence also depends on every other
// caller in the process; rand.Seed just trades one global for another.
// Constructors (rand.New, rand.NewSource, and the math/rand/v2 PCG and
// ChaCha8 sources) are allowed, as is everything in test files.
var SeededRand = &Analyzer{
	Name: "seeded-rand",
	Doc:  "math/rand must flow through explicitly seeded rand.New(rand.NewSource(...)) sources",
	Run:  runSeededRand,
}

// randConstructors are the package-level math/rand functions that build
// explicit sources rather than drawing from the global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand, so the seed is already threaded
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSeededRand(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods on *rand.Rand are fine: the source was constructed somewhere
		}
		if randConstructors[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(), "global math/rand call rand.%s draws from an unseeded shared stream; construct rand.New(rand.NewSource(seed)) with a seed threaded from Options or flags", fn.Name())
		return true
	})
}
