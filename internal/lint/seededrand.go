package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand bans the global math/rand generator in non-test code.  Every
// random choice in this repository — CV splits, k-means inits, synthetic
// datasets — must come from a rand.New(rand.NewSource(seed)) source whose
// seed is threaded from Options or flags, so experiments replay bit-for-
// bit and the paper tables are reproducible.  The package-level rand
// functions (rand.Intn, rand.Float64, rand.Perm, ...) draw from a shared,
// effectively unseeded stream whose sequence also depends on every other
// caller in the process; rand.Seed just trades one global for another.
// Constructors (rand.New, rand.NewSource, and the math/rand/v2 PCG and
// ChaCha8 sources) are allowed, as is everything in test files.
//
// Inside the hot kernel closure (everything the call graph reaches from
// a kernel entry point) the rule tightens: even *seeded* draws are
// banned there.  A kernel whose output consumes randomness mid-flight
// cannot honor the bitwise par/seq twin contract once work is sharded,
// so sketching matrices, sampled pivots, and synthetic inputs must be
// drawn in the setup layer and passed in as data.
var SeededRand = &Analyzer{
	Name: "seeded-rand",
	Doc:  "math/rand must flow through explicitly seeded sources, and hot kernels must be randomness-free entirely",
	Run:  runSeededRand,
}

// randConstructors are the package-level math/rand functions that build
// explicit sources rather than drawing from the global stream.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *rand.Rand, so the seed is already threaded
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runSeededRand(pass *Pass) {
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := info.Uses[sel.Sel]
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return true // methods on *rand.Rand are fine: the source was constructed somewhere
		}
		if randConstructors[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(), "global math/rand call rand.%s draws from an unseeded shared stream; construct rand.New(rand.NewSource(seed)) with a seed threaded from Options or flags", fn.Name())
		return true
	})
	// Interprocedural: no randomness at all — seeded or not — inside the
	// hot kernel closure.  The global-stream sites above are already
	// findings everywhere; what only the call graph can see is a seeded
	// *rand.Rand method draw buried in a helper a kernel reaches.
	mod := pass.Module
	for _, n := range pass.hotNodes() {
		for _, site := range randMethodCalls(info, n) {
			pass.Reportf(site.pos, "rand method call %s in %s is inside the hot kernel closure (reachable from entry %s); kernels must be randomness-free — draw in the setup layer with a threaded seed and pass the result in as data",
				site.what, mod.funcDisplayName(n.Func), mod.funcDisplayName(n.HotVia.Func))
		}
	}
}
