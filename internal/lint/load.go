package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Module is a fully parsed and type-checked Go module rooted at a single
// directory.  The loader is deliberately stdlib-only (go/parser + go/types
// + go/importer): the whole point of srdalint is that the determinism
// contract is enforceable with nothing but the toolchain that builds the
// repo.
type Module struct {
	// Root is the absolute directory holding go.mod (or the corpus root
	// when a module path was supplied explicitly).
	Root string
	// Path is the module path ("srda" for this repo).
	Path string
	// Fset positions every file in every package.
	Fset *token.FileSet
	// Pkgs lists the packages in dependency (topological) order.
	Pkgs []*Package
	// Sources retains the raw lines of every parsed file, keyed by the
	// absolute filename recorded in Fset.  Suppression comments and the
	// corpus "// want" harness are resolved against these.
	Sources map[string][]string

	// ip caches the interprocedural call graph; built lazily by
	// ensureInterproc the first time an analyzer asks for hot nodes.
	ip *interproc
}

// Package is one directory's worth of Go code.  Only the non-test files
// are type-checked; _test.go files (internal and external test packages
// alike) are parsed for the analyzers that inspect test coverage but are
// never fed to go/types, which keeps the loader simple and fast.
type Package struct {
	// Path is the module-qualified import path.
	Path string
	// RelDir is the directory relative to the module root, using forward
	// slashes; "" for the root package.
	RelDir string
	// Name is the package clause name of the non-test files.
	Name string
	// Files are the parsed non-test files, in filename order.
	Files []*ast.File
	// TestFiles are the parsed _test.go files (not type-checked).
	TestFiles []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info

	dir     string   // absolute directory
	imports []string // intra-module import paths
}

var moduleDirective = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load parses and type-checks every package under root.  modPath names the
// module; when empty it is read from root/go.mod.  Directories named
// testdata or vendor, and directories starting with "." or "_", are
// skipped, matching the go tool's rules.
func Load(root, modPath string) (*Module, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if modPath == "" {
		data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
		if err != nil {
			return nil, fmt.Errorf("lint: reading go.mod: %w", err)
		}
		m := moduleDirective.FindSubmatch(data)
		if m == nil {
			return nil, fmt.Errorf("lint: no module directive in %s/go.mod", abs)
		}
		modPath = string(m[1])
	}
	mod := &Module{
		Root:    abs,
		Path:    modPath,
		Fset:    token.NewFileSet(),
		Sources: make(map[string][]string),
	}
	if err := mod.parseTree(); err != nil {
		return nil, err
	}
	if err := mod.sortPackages(); err != nil {
		return nil, err
	}
	if err := mod.typeCheck(); err != nil {
		return nil, err
	}
	return mod, nil
}

// PackageAt returns the package whose RelDir equals rel, or nil.
func (m *Module) PackageAt(rel string) *Package {
	for _, p := range m.Pkgs {
		if p.RelDir == rel {
			return p
		}
	}
	return nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func (m *Module) parseTree() error {
	return filepath.WalkDir(m.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if path != m.Root && skipDir(d.Name()) {
			return filepath.SkipDir
		}
		pkg, err := m.parseDir(path)
		if err != nil {
			return err
		}
		if pkg != nil {
			m.Pkgs = append(m.Pkgs, pkg)
		}
		return nil
	})
}

// parseDir parses one directory into a Package, or returns nil if it holds
// no non-test Go files.
func (m *Module) parseDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	if rel == "." {
		rel = ""
	}
	pkg := &Package{RelDir: filepath.ToSlash(rel), dir: dir}
	if pkg.RelDir == "" {
		pkg.Path = m.Path
	} else {
		pkg.Path = m.Path + "/" + pkg.RelDir
	}
	importSet := make(map[string]bool)
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(m.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		m.Sources[full] = strings.Split(string(src), "\n")
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
			continue
		}
		if pkg.Name == "" {
			pkg.Name = f.Name.Name
		} else if pkg.Name != f.Name.Name {
			return nil, fmt.Errorf("lint: %s: mixed package names %s and %s", dir, pkg.Name, f.Name.Name)
		}
		pkg.Files = append(pkg.Files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p == m.Path || strings.HasPrefix(p, m.Path+"/") {
				importSet[p] = true
			}
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for p := range importSet {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// sortPackages orders Pkgs so every package appears after its intra-module
// imports, erroring on cycles.
func (m *Module) sortPackages() error {
	byPath := make(map[string]*Package, len(m.Pkgs))
	for _, p := range m.Pkgs {
		byPath[p.Path] = p
	}
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[*Package]int)
	var order []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p] = visiting
		for _, dep := range p.imports {
			if q, ok := byPath[dep]; ok {
				if err := visit(q); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	// Iterate in the deterministic WalkDir order for stable output.
	for _, p := range m.Pkgs {
		if err := visit(p); err != nil {
			return err
		}
	}
	m.Pkgs = order
	return nil
}

// chainImporter resolves intra-module imports to the packages this loader
// already type-checked, and stdlib imports through the compiler's export
// data, falling back to type-checking the standard library from source
// when export data is unavailable (as on minimal CI toolchains).
type chainImporter struct {
	byPath map[string]*Package
	fset   *token.FileSet
	gc     types.Importer
	src    types.Importer
	cache  map[string]*types.Package
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.byPath[path]; ok {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: import of %s before it was checked", path)
		}
		return p.Types, nil
	}
	if tp, ok := c.cache[path]; ok {
		return tp, nil
	}
	tp, err := c.gc.Import(path)
	if err != nil {
		if c.src == nil {
			c.src = importer.ForCompiler(c.fset, "source", nil)
		}
		var srcErr error
		if tp, srcErr = c.src.Import(path); srcErr != nil {
			return nil, fmt.Errorf("lint: importing %s: %v (source fallback: %v)", path, err, srcErr)
		}
	}
	c.cache[path] = tp
	return tp, nil
}

func (m *Module) typeCheck() error {
	byPath := make(map[string]*Package, len(m.Pkgs))
	for _, p := range m.Pkgs {
		byPath[p.Path] = p
	}
	imp := &chainImporter{
		byPath: byPath,
		fset:   m.Fset,
		gc:     importer.Default(),
		cache:  make(map[string]*types.Package),
	}
	for _, p := range m.Pkgs {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tp, err := conf.Check(p.Path, m.Fset, p.Files, info)
		if err != nil {
			return fmt.Errorf("lint: type-checking %s: %w", p.Path, err)
		}
		p.Types = tp
		p.Info = info
	}
	return nil
}
