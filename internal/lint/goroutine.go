package lint

import "go/ast"

// GoroutineDiscipline bans raw go statements outside the packages that
// legitimately own concurrency.  Kernel fan-out must go through
// internal/pool: its idle-worker handoff with inline fallback is what
// makes nested fork-joins deadlock-free and keeps the process on one
// GOMAXPROCS budget, and its contiguous-span sharding is what the bitwise
// determinism proof rests on.  A raw goroutine anywhere else bypasses all
// three guarantees.
//
// Allowed: internal/pool (the mechanism), the serving tier —
// internal/serve (owns the connection/dispatch lifecycle),
// internal/router (health sweeps), internal/registry — and main
// packages (cmd/ and examples/ own their process lifecycle).  Test
// files are not checked.
var GoroutineDiscipline = &Analyzer{
	Name: "goroutine-discipline",
	Doc:  "raw go statements are confined to internal/pool, the serving tier (serve, router, registry, online), and main packages",
	Run:  runGoroutineDiscipline,
}

func runGoroutineDiscipline(pass *Pass) {
	if pass.Pkg.Name == "main" || underAny(pass.Pkg.RelDir, goroutineOwners) {
		return
	}
	pass.inspectFiles(func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			pass.Reportf(g.Pos(), "raw go statement in library package %s; route fan-out through internal/pool so worker budgets and the determinism contract hold", pass.Pkg.Path)
		}
		return true
	})
}
