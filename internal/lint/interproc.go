package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"srda/internal/lint/graph"
)

// This file is the bridge between the analyzer suite and the call graph
// in internal/lint/graph.  Run builds the graph once per module, marks
// the transitive closure of "hot" functions reachable from the kernel
// entry points, and hands the result to the analyzers, which use it to
// fire *through* call chains: a helper that allocates, reads the clock,
// draws randomness, or ranges over a map is a violation when a hot
// kernel reaches it, no matter which package the helper lives in.

// interproc is the per-module interprocedural state, cached on Module.
type interproc struct {
	g *graph.Graph
	// nodesByPkg groups nodes by declaring package path so per-package
	// analyzer passes report findings in their own package.
	nodesByPkg map[string][]*graph.Node
	// allocMemo caches each node's first direct allocation (nil when the
	// body is allocation-free); allocDone marks computed entries.
	allocMemo map[*graph.Node]*allocSite
	allocDone map[*graph.Node]bool
}

// allocOf returns the node's first direct heap allocation, memoized.
func (ip *interproc) allocOf(n *graph.Node) *allocSite {
	if ip.allocDone[n] {
		return ip.allocMemo[n]
	}
	ip.allocDone[n] = true
	a := firstDirectAlloc(n.Pkg.Info, n)
	ip.allocMemo[n] = a
	return a
}

// ensureInterproc builds the call graph and hot marking on first use.
func (m *Module) ensureInterproc() *interproc {
	if m.ip != nil {
		return m.ip
	}
	pkgs := make([]*graph.Package, 0, len(m.Pkgs))
	for _, p := range m.Pkgs {
		pkgs = append(pkgs, &graph.Package{
			Path:   p.Path,
			RelDir: p.RelDir,
			Files:  p.Files,
			Types:  p.Types,
			Info:   p.Info,
		})
	}
	g := graph.Build(m.Fset, pkgs)
	g.MarkHot(isHotEntry)
	ip := &interproc{
		g:          g,
		nodesByPkg: make(map[string][]*graph.Node),
		allocMemo:  make(map[*graph.Node]*allocSite),
		allocDone:  make(map[*graph.Node]bool),
	}
	for _, n := range g.Nodes {
		ip.nodesByPkg[n.Pkg.Path] = append(ip.nodesByPkg[n.Pkg.Path], n)
	}
	m.ip = ip
	return ip
}

// hotNodes returns the hot nodes declared in the pass's package.
func (p *Pass) hotNodes() []*graph.Node {
	ip := p.Module.ensureInterproc()
	var out []*graph.Node
	for _, n := range ip.nodesByPkg[p.Pkg.Path] {
		if n.Hot {
			out = append(out, n)
		}
	}
	return out
}

// graphOf returns the module's call graph.
func (p *Pass) graphOf() *graph.Graph { return p.Module.ensureInterproc().g }

// cholEntryMethods are the Cholesky solve/update methods that sit on the
// refit hot path (the online trainer calls them per refit, the primal
// fit per train).
var cholEntryMethods = map[string]bool{
	"SolveVec": true, "Solve": true, "Update": true, "Downdate": true,
}

// isHotEntry decides whether a function is a kernel entry point: the
// batch-predict surface (PredictBatch*/ProjectBatch* and their Ctx
// variants, wherever declared), every exported Par* kernel in the kernel
// packages, and the LSQR/Cholesky inner solves.  The hot closure is
// everything these reach.
func isHotEntry(n *graph.Node) bool {
	name := n.Func.Name()
	if strings.HasPrefix(name, "PredictBatch") || strings.HasPrefix(name, "ProjectBatch") {
		return true
	}
	rel := n.Pkg.RelDir
	if underAny(rel, kernelDirs) {
		if _, ok := parTwinName(name); ok && n.Func.Exported() {
			return true
		}
	}
	if underAny(rel, []string{"internal/solver"}) && (name == "LSQR" || name == "CGNE") {
		return true
	}
	if underAny(rel, []string{"internal/decomp"}) {
		if name == "NewCholesky" || name == "SolveSPD" ||
			name == "SolveUpperTranspose" || name == "SolveUpperVec" {
			return true
		}
		if recv := n.Func.Type().(*types.Signature).Recv(); recv != nil && cholEntryMethods[name] {
			if named, ok := derefNamed(recv.Type()); ok && named.Obj().Name() == "Cholesky" {
				return true
			}
		}
	}
	return false
}

// derefNamed unwraps a pointer receiver to its named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return n, ok
}

// funcDisplayName renders a function for diagnostics with the module
// path stripped: "blas.ParGemm", "(*core.Model).PredictBatch".
func (m *Module) funcDisplayName(fn *types.Func) string {
	name := fn.FullName()
	name = strings.ReplaceAll(name, m.Path+"/internal/", "")
	name = strings.ReplaceAll(name, m.Path+"/", "")
	// The root package keeps its package-clause name for readability.
	if fn.Pkg() != nil && fn.Pkg().Path() == m.Path && !strings.Contains(name, ".") {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// chainString renders a call path as "a → b → c" for diagnostics.
func (m *Module) chainString(start *graph.Node, path []graph.Edge) string {
	parts := []string{m.funcDisplayName(start.Func)}
	for _, e := range path {
		parts = append(parts, m.funcDisplayName(e.Callee.Func))
	}
	return strings.Join(parts, " → ")
}

// ---- per-node fact walks shared by the interprocedural analyzers ----

// allocSite is one heap-allocating construct found in a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// directAllocs returns the heap-allocating constructs in a node's body
// (function literals included): make/append/new, fmt calls, function
// literals (closure allocation), and composite literals that are
// heap-bound — address-taken (&T{...}) or of slice/map type.  A plain
// value composite (T{...}) is stack-allocated and deliberately not
// counted here, unlike in the intraprocedural innermost-loop check where
// any per-iteration composite is suspect.
func directAllocs(info *types.Info, n *graph.Node) []allocSite {
	var out []allocSite
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make", "append", "new":
						out = append(out, allocSite{e.Pos(), b.Name()})
					}
				}
				return true
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
					out = append(out, allocSite{e.Pos(), "fmt." + fn.Name()})
				}
			}
		case *ast.FuncLit:
			out = append(out, allocSite{e.Pos(), "func literal (closure allocation)"})
			return true // keep walking: literals may allocate too
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					out = append(out, allocSite{e.X.Pos(), "&composite literal"})
					return false
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[e]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					out = append(out, allocSite{e.Pos(), "slice/map literal"})
				}
			}
		}
		return true
	})
	return out
}

// firstDirectAlloc returns the first allocating construct, or nil.
func firstDirectAlloc(info *types.Info, n *graph.Node) *allocSite {
	if s := directAllocs(info, n); len(s) > 0 {
		return &s[0]
	}
	return nil
}

// infoFor finds the go/types Info for a node's package.
func (m *Module) infoFor(n *graph.Node) *types.Info { return n.Pkg.Info }

// clockReads returns the wall-clock reads (the noclock clockFuncs set)
// in a node's body, as (pos, "time.Now") pairs.
func clockReads(info *types.Info, n *graph.Node) []allocSite {
	var out []allocSite
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || !isClockRead(fn) {
			return true
		}
		out = append(out, allocSite{sel.Pos(), "time." + fn.Name()})
		return true
	})
	return out
}

// randMethodCalls returns calls of methods on math/rand (or v2) values —
// r.Float64(), src.Uint64() — in a node's body.  Package-level global
// rand calls are the intraprocedural seeded-rand analyzer's job; the
// method calls here are the ones that are legal elsewhere but banned
// inside the hot closure, where kernels must be randomness-free
// regardless of seeding.
func randMethodCalls(info *types.Info, n *graph.Node) []allocSite {
	var out []allocSite
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return true
		}
		out = append(out, allocSite{sel.Pos(), fmt.Sprintf("(*rand).%s", fn.Name())})
		return true
	})
	return out
}

// loopRanges collects the [start, end] position ranges of every
// innermost-loop body in a node's declaration (closures walked too).
func innermostLoopBodies(n *graph.Node) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		body := loopBody(x)
		if body != nil && !containsLoop(body) {
			out = append(out, body)
		}
		return true
	})
	return out
}

// edgesWithin returns the node's outgoing edges whose call site lies
// inside the given block.
func edgesWithin(n *graph.Node, body *ast.BlockStmt) []graph.Edge {
	var out []graph.Edge
	for _, e := range n.Out {
		if e.Pos >= body.Pos() && e.Pos <= body.End() {
			out = append(out, e)
		}
	}
	return out
}
