package lint

import "testing"

// TestSelfLint is the repo's own gate: the full analyzer suite over the
// whole module must come back clean.  Every intentional exception in the
// tree carries a //srdalint:ignore with a reason, so any diagnostic here
// is either a real regression or a new decision that needs annotating.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	mod, err := Load("../..", "")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if mod.Path != "srda" {
		t.Fatalf("module path = %q, expected srda", mod.Path)
	}
	diags := Run(mod, Analyzers)
	for _, d := range diags {
		t.Errorf("%s:%d:%d: %s (%s)", relCorpus(mod, d.File), d.Line, d.Col, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Fatalf("self-lint found %d findings; fix them or annotate with //srdalint:ignore <analyzer> <reason>", len(diags))
	}
}
