package lint

import (
	"go/ast"
	"strings"
)

// ignoreMarker introduces a suppression comment:
//
//	//srdalint:ignore <analyzer> <reason...>
//
// A suppression trailing a line of code covers findings on that line; a
// suppression on its own line covers the next line of code (runs of
// stacked suppressions all cover the first code line below them).  The
// reason is mandatory so every silenced finding explains itself in the
// diff, and the analyzer name must be one of the suite's — both rules are
// enforced by reporting malformed comments as "suppress" findings.
const ignoreMarker = "//srdalint:ignore"

// suppressionSet maps file -> line -> analyzer names suppressed there.
type suppressionSet map[string]map[int]map[string]bool

func (s suppressionSet) covers(d Diagnostic) bool {
	lines, ok := s[d.File]
	if !ok {
		return false
	}
	return lines[d.Line][d.Analyzer]
}

func (s suppressionSet) add(file string, line int, analyzer string) {
	if s[file] == nil {
		s[file] = make(map[int]map[string]bool)
	}
	if s[file][line] == nil {
		s[file][line] = make(map[string]bool)
	}
	s[file][line][analyzer] = true
}

// ignoreComment is one well-formed or malformed suppression comment.
type ignoreComment struct {
	file       string
	line, col  int
	analyzer   string
	err        string // non-empty when malformed
	standalone bool   // nothing but the comment on its line
	effLine    int    // the code line this suppression covers (well-formed only)
}

// collectSuppressions walks the parsed comments of every file (test files
// included), returning the set of (file, line, analyzer) triples the
// well-formed suppressions cover, diagnostics for malformed ones, and the
// well-formed comments themselves (with their resolved effective lines)
// so Run can detect suppressions that no longer silence anything.
// Working from the ASTs rather than raw text means a marker inside a
// string literal or quoted in documentation is never mistaken for a
// suppression.
func collectSuppressions(mod *Module) (suppressionSet, []Diagnostic, []ignoreComment) {
	var comments []ignoreComment
	// standaloneAt[file] records the lines occupied by standalone
	// suppression comments, so stacked runs resolve below the whole run.
	standaloneAt := make(map[string]map[int]bool)
	for _, pkg := range mod.Pkgs {
		files := make([]*ast.File, 0, len(pkg.Files)+len(pkg.TestFiles))
		files = append(files, pkg.Files...)
		files = append(files, pkg.TestFiles...)
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignoreMarker) {
						continue
					}
					pos := mod.Fset.Position(c.Pos())
					ic := ignoreComment{file: pos.Filename, line: pos.Line, col: pos.Column}
					if src := mod.Sources[pos.Filename]; pos.Line-1 < len(src) {
						prefix := src[pos.Line-1][:pos.Column-1]
						ic.standalone = strings.TrimSpace(prefix) == ""
					}
					fields := strings.Fields(c.Text[len(ignoreMarker):])
					switch {
					case len(fields) == 0:
						ic.err = "srdalint:ignore needs an analyzer name and a reason"
					case AnalyzerByName(fields[0]) == nil:
						ic.err = "srdalint:ignore names unknown analyzer " + fields[0]
					case len(fields) < 2:
						ic.err = "srdalint:ignore " + fields[0] + " needs a reason"
					default:
						ic.analyzer = fields[0]
					}
					comments = append(comments, ic)
					if ic.err == "" && ic.standalone {
						if standaloneAt[ic.file] == nil {
							standaloneAt[ic.file] = make(map[int]bool)
						}
						standaloneAt[ic.file][ic.line] = true
					}
				}
			}
		}
	}
	set := make(suppressionSet)
	var malformed []Diagnostic
	var wellFormed []ignoreComment
	for _, ic := range comments {
		if ic.err != "" {
			malformed = append(malformed, Diagnostic{
				Analyzer: "suppress", File: ic.file, Line: ic.line, Col: ic.col, Message: ic.err,
			})
			continue
		}
		eff := ic.line
		if ic.standalone {
			eff++
			for standaloneAt[ic.file][eff] {
				eff++
			}
		}
		ic.effLine = eff
		set.add(ic.file, eff, ic.analyzer)
		wellFormed = append(wellFormed, ic)
	}
	return set, malformed, wellFormed
}

// staleSuppressions reports the well-formed suppressions that silence
// nothing: their analyzer ran in this invocation but produced no finding
// on the covered line.  Such a comment is worse than dead weight — it
// would invisibly swallow the next genuine finding introduced on that
// line — so removing it is enforced the same way adding one is.
// Suppressions naming analyzers outside this run are left alone (a
// single-analyzer run must not condemn every other analyzer's comments).
func staleSuppressions(diags []Diagnostic, wellFormed []ignoreComment, analyzers []*Analyzer) []Diagnostic {
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	fired := make(map[key]bool, len(diags))
	for _, d := range diags {
		fired[key{d.File, d.Line, d.Analyzer}] = true
	}
	var out []Diagnostic
	for _, ic := range wellFormed {
		if !ran[ic.analyzer] {
			continue
		}
		if fired[key{ic.file, ic.effLine, ic.analyzer}] {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: "suppress", File: ic.file, Line: ic.line, Col: ic.col,
			Message: "stale suppression: " + ic.analyzer + " no longer fires on the covered line; delete this comment",
		})
	}
	return out
}
