package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// TraceHeader bans ad-hoc writes of the trace-propagation header: any
// net/http.Header Set/Add whose key is a string constant equal (case
// insensitively) to "traceparent" outside internal/obs.  Cross-process
// trace continuity depends on every hop injecting the active span's
// coordinates in the exact W3C format obs.ExtractTrace parses; a stray
// req.Header.Set("Traceparent", ...) freezes a stale or hand-built value
// into the hop, silently detaching the downstream subtree from the
// request's trace.  Injection goes through obs.InjectTrace, which also
// keeps the nil-span and zero-trace no-op discipline in one place.
//
// internal/obs is exempt as the propagation implementation itself.
// Reading the header (Header.Get) is untouched, and test files are not
// checked — tests hand-craft traceparent values to probe the parser.
var TraceHeader = &Analyzer{
	Name: "traceheader",
	Doc:  "the Traceparent header is written only by obs.InjectTrace; ad-hoc Header.Set/Add detaches downstream spans",
	Run:  runTraceHeader,
}

// traceHeaderOwners are the packages allowed to write the header raw:
// the propagation implementation itself.
var traceHeaderOwners = []string{"internal/obs"}

func runTraceHeader(pass *Pass) {
	if underAny(pass.Pkg.RelDir, traceHeaderOwners) {
		return
	}
	info := pass.Pkg.Info
	pass.inspectFiles(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 1 {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || (fn.Name() != "Set" && fn.Name() != "Add") {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil || !isHTTPHeader(sig.Recv().Type()) {
			return true
		}
		tv, ok := info.Types[call.Args[0]]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			return true
		}
		if strings.EqualFold(constant.StringVal(tv.Value), "traceparent") {
			pass.Reportf(call.Pos(), "ad-hoc Header.%s of the Traceparent header in %s detaches downstream spans from the request's trace; inject through obs.InjectTrace", fn.Name(), pass.Pkg.Path)
		}
		return true
	})
}

// isHTTPHeader reports whether t is net/http.Header.
func isHTTPHeader(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Header"
}
