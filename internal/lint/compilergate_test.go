package lint

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// sampleBuildOutput reproduces the shapes `go build -gcflags='-m=2
// -d=ssa/check_bce/debug=1'` actually emits: package headers, inlining
// chatter, escape diagnostics printed twice (flow-explanation form with
// a trailing colon, then bare), indented flow lines at the same
// position, leaking-parameter notes (not allocations), moved-to-heap
// variables, and the two BCE diagnostic spellings.
const sampleBuildOutput = `# srda/internal/blas
internal/blas/blas.go:10:6: can inline Dot with cost 42 as: func([]float64, []float64) float64
internal/blas/blas.go:20:9: "blas: vector length mismatch in Dot" escapes to heap:
internal/blas/blas.go:20:9:   flow: {heap} = &{storage for "blas: vector length mismatch in Dot"}:
internal/blas/blas.go:20:9:     from "blas: vector length mismatch in Dot" (spill) at internal/blas/blas.go:20:9
internal/blas/blas.go:20:9: "blas: vector length mismatch in Dot" escapes to heap
internal/blas/blas.go:9:10: x does not escape
internal/blas/blas.go:9:13: leaking param: y
internal/blas/blas.go:24:3: Found IsInBounds
internal/blas/blas.go:25:3: Found IsSliceInBounds
# srda/internal/mat
internal/mat/dense.go:31:2: moved to heap: scratch:
internal/mat/dense.go:31:2:   flow: {heap} = &scratch:
internal/mat/dense.go:31:2: moved to heap: scratch
internal/mat/dense.go:40:14: make([]float64, n) escapes to heap:
internal/mat/dense.go:40:14: make([]float64, n) escapes to heap
internal/mat/dense.go:52:8: Found IsInBounds
not a diagnostic line at all
`

func TestParseCompilerDiags(t *testing.T) {
	got := ParseCompilerDiags(sampleBuildOutput)
	want := []CompilerDiag{
		{File: "internal/blas/blas.go", Line: 20, Col: 9, Kind: "escape", What: `"blas: vector length mismatch in Dot" escapes to heap`},
		{File: "internal/blas/blas.go", Line: 24, Col: 3, Kind: "bounds", What: "Found IsInBounds"},
		{File: "internal/blas/blas.go", Line: 25, Col: 3, Kind: "bounds", What: "Found IsSliceInBounds"},
		{File: "internal/mat/dense.go", Line: 31, Col: 2, Kind: "escape", What: "moved to heap: scratch"},
		{File: "internal/mat/dense.go", Line: 40, Col: 14, Kind: "escape", What: "make([]float64, n) escapes to heap"},
		{File: "internal/mat/dense.go", Line: 52, Col: 8, Kind: "bounds", What: "Found IsInBounds"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseCompilerDiags:\ngot  %#v\nwant %#v", got, want)
	}
}

func TestParseCompilerDiagsLeakingParamsIgnored(t *testing.T) {
	for _, line := range []string{
		"internal/blas/blas.go:9:13: leaking param: y",
		"internal/blas/blas.go:9:10: x does not escape",
		"internal/blas/blas.go:10:6: can inline Dot with cost 42",
		"# srda/internal/blas",
		"",
	} {
		if got := ParseCompilerDiags(line); len(got) != 0 {
			t.Errorf("line %q parsed as %v, expected nothing", line, got)
		}
	}
}

// TestAttributeFacts pins the diagnostic→function bucketing against the
// hotalloc corpus, whose declaration line ranges are stable: Grow spans
// lines 6–12, Scratch 16–24, Fresh 45–54 of internal/mat/hot.go.
func TestAttributeFacts(t *testing.T) {
	mod := loadCorpus(t, "hotalloc")
	diags := []CompilerDiag{
		{File: "internal/mat/hot.go", Line: 9, Col: 3, Kind: "escape", What: "append escapes"},
		{File: "internal/mat/hot.go", Line: 9, Col: 9, Kind: "bounds", What: "Found IsInBounds"},
		{File: "internal/mat/hot.go", Line: 18, Col: 10, Kind: "escape", What: "make escapes"},
		{File: "internal/mat/hot.go", Line: 48, Col: 10, Kind: "escape", What: "make escapes"},
		{File: "internal/mat/hot.go", Line: 49, Col: 8, Kind: "escape", What: "new escapes"},
		// Outside every function: dropped.
		{File: "internal/mat/hot.go", Line: 1, Col: 1, Kind: "escape", What: "phantom"},
		// Unknown file: dropped.
		{File: "internal/mat/nosuch.go", Line: 9, Col: 3, Kind: "escape", What: "phantom"},
	}
	got := mod.AttributeFacts(diags, []string{"internal/mat"})
	want := map[string]map[string]FuncFacts{
		"internal/mat": {
			"Grow":    {Escapes: 1, Bounds: 1},
			"Scratch": {Escapes: 1},
			"Fresh":   {Escapes: 2},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("AttributeFacts:\ngot  %#v\nwant %#v", got, want)
	}
}

func TestCompareBudget(t *testing.T) {
	budget := &Budget{
		Schema: 1,
		Go:     "go1.24.0",
		Packages: map[string]map[string]FuncFacts{
			"internal/blas": {
				"Dot":     {Escapes: 1, Bounds: 5},
				"Deleted": {Escapes: 2, Bounds: 0},
				"Better":  {Escapes: 3, Bounds: 3},
			},
		},
	}
	current := map[string]map[string]FuncFacts{
		"internal/blas": {
			"Dot":    {Escapes: 2, Bounds: 5}, // gained an escape
			"Better": {Escapes: 1, Bounds: 3}, // improved
			"Fresh":  {Escapes: 0, Bounds: 2}, // new function, nonzero bounds
		},
	}
	failures, notes := CompareBudget(budget, current, "go1.24.0")
	if len(failures) != 2 {
		t.Fatalf("expected 2 failures, got %d: %v", len(failures), failures)
	}
	if !strings.Contains(failures[0], "Better") && !strings.Contains(failures[0], "Dot") {
		t.Errorf("unexpected first failure: %s", failures[0])
	}
	var sawGain, sawNew bool
	for _, f := range failures {
		if strings.Contains(f, "Dot gained heap escape") {
			sawGain = true
		}
		if strings.Contains(f, "Fresh gained bounds checks") && strings.Contains(f, "new function") {
			sawNew = true
		}
	}
	if !sawGain || !sawNew {
		t.Errorf("missing expected failures (gain=%v new=%v): %v", sawGain, sawNew, failures)
	}
	var sawImproved, sawDeleted bool
	for _, n := range notes {
		if strings.Contains(n, "Better improved") {
			sawImproved = true
		}
		if strings.Contains(n, "Deleted is budgeted but no longer reports") {
			sawDeleted = true
		}
	}
	if !sawImproved || !sawDeleted {
		t.Errorf("missing expected notes (improved=%v deleted=%v): %v", sawImproved, sawDeleted, notes)
	}

	// Toolchain drift is a note, never a failure.
	failures, notes = CompareBudget(budget, map[string]map[string]FuncFacts{}, "go1.25.0")
	if len(failures) != 0 {
		t.Errorf("toolchain mismatch produced failures: %v", failures)
	}
	found := false
	for _, n := range notes {
		if strings.Contains(n, "toolchain-sensitive") {
			found = true
		}
	}
	if !found {
		t.Errorf("no toolchain-mismatch note in %v", notes)
	}

	// Equal counts pass clean.
	failures, _ = CompareBudget(budget, map[string]map[string]FuncFacts{
		"internal/blas": {"Dot": {Escapes: 1, Bounds: 5}},
	}, "go1.24.0")
	for _, f := range failures {
		if strings.Contains(f, "Dot") {
			t.Errorf("within-budget function failed: %s", f)
		}
	}
}

func TestBudgetRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lint_budget.json")
	in := &Budget{
		Schema: 1,
		Go:     "go1.24.0",
		Packages: map[string]map[string]FuncFacts{
			"internal/blas": {"Dot": {Escapes: 1, Bounds: 5}},
		},
	}
	if err := WriteBudget(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadBudget(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip:\ngot  %#v\nwant %#v", out, in)
	}
	// A missing file is an empty budget, not an error: the first gate run
	// then fails on every nonzero count instead of crashing.
	empty, err := ReadBudget(filepath.Join(t.TempDir(), "nosuch.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Packages) != 0 {
		t.Errorf("missing budget not empty: %#v", empty)
	}
}
