package graph_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"srda/internal/lint/graph"
)

// buildGraph type-checks the given sources (path → single-file source,
// checked in the given order so imports resolve) and builds the call
// graph.  RelDir is the path with the module prefix "m/" stripped.
func buildGraph(t *testing.T, order []string, srcs map[string]string) *graph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	typed := make(map[string]*types.Package)
	var pkgs []*graph.Package
	for _, path := range order {
		f, err := parser.ParseFile(fset, path+"/src.go", srcs[path], parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", path, err)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: mapImporter(typed)}
		tp, err := conf.Check(path, fset, []*ast.File{f}, info)
		if err != nil {
			t.Fatalf("type-checking %s: %v", path, err)
		}
		typed[path] = tp
		pkgs = append(pkgs, &graph.Package{
			Path:   path,
			RelDir: path[len("m/"):],
			Files:  []*ast.File{f},
			Types:  tp,
			Info:   info,
		})
	}
	return graph.Build(fset, pkgs)
}

type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if p, ok := m[path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("test importer: unknown package %q", path)
}

// nodeNamed finds the unique node whose function has the given name.
func nodeNamed(t *testing.T, g *graph.Graph, name string) *graph.Node {
	t.Helper()
	var found *graph.Node
	for _, n := range g.Nodes {
		if n.Func.Name() == name {
			if found != nil {
				t.Fatalf("two nodes named %s", name)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no node named %s", name)
	}
	return found
}

func edgeKinds(n *graph.Node) map[string][]graph.Kind {
	out := make(map[string][]graph.Kind)
	for _, e := range n.Out {
		name := e.Callee.Func.Name()
		out[name] = append(out[name], e.Kind)
	}
	return out
}

const utilSrc = `package util

func Helper() int { return alloc() }

func alloc() int {
	xs := make([]int, 1)
	return xs[0]
}
`

const poolSrc = `package pool

func Do(n int, fn func(int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
`

const coreSrc = `package core

import (
	"m/internal/pool"
	"m/util"
)

type Runner struct{ n int }

func (r *Runner) step(i int) { r.n += util.Helper() }

func PredictBatch(rs []*Runner) {
	r := rs[0]
	pool.Do(len(rs), func(i int) { r.n = util.Helper() })
	pool.Do(len(rs), r.step)
}

func Loop(n int) int {
	if n == 0 {
		return 0
	}
	return Loop(n-1) + 1
}

type Shape interface{ Area() float64 }

type Square struct{ s float64 }

func (q Square) Area() float64 { return q.s * q.s }

type Circle struct{ r float64 }

func (c Circle) Area() float64 { return 3 * c.r * c.r }

func TotalArea(shapes []Shape) float64 {
	var t float64
	for _, s := range shapes {
		t += s.Area()
	}
	return t
}
`

func build(t *testing.T) *graph.Graph {
	return buildGraph(t,
		[]string{"m/util", "m/internal/pool", "m/core"},
		map[string]string{"m/util": utilSrc, "m/internal/pool": poolSrc, "m/core": coreSrc})
}

// TestEdges pins the three edge sources: direct (and cross-package
// qualified) calls, closure bodies inlined into the enclosing
// declaration, and function/method values passed as call arguments.
func TestEdges(t *testing.T) {
	g := build(t)
	pb := nodeNamed(t, g, "PredictBatch")
	kinds := edgeKinds(pb)
	if got := kinds["Do"]; len(got) != 2 || got[0] != graph.KindCall || got[1] != graph.KindCall {
		t.Errorf("PredictBatch→Do edges = %v, want two KindCall", got)
	}
	if got := kinds["Helper"]; len(got) != 1 || got[0] != graph.KindCall {
		t.Errorf("PredictBatch→Helper (closure body) edges = %v, want one KindCall", got)
	}
	if got := kinds["step"]; len(got) != 1 || got[0] != graph.KindRef {
		t.Errorf("PredictBatch→step (method value) edges = %v, want one KindRef", got)
	}
	if got := edgeKinds(nodeNamed(t, g, "Helper"))["alloc"]; len(got) != 1 {
		t.Errorf("Helper→alloc edges = %v, want one", got)
	}
}

// TestInterfaceDispatch checks the conservative fan-out: a call through
// an interface method edges to every implementation's method.
func TestInterfaceDispatch(t *testing.T) {
	g := build(t)
	ta := nodeNamed(t, g, "TotalArea")
	var impls []string
	for _, e := range ta.Out {
		if e.Kind != graph.KindIface {
			t.Errorf("TotalArea edge to %s has kind %v, want KindIface", e.Callee.Func.Name(), e.Kind)
		}
		impls = append(impls, e.Callee.Pkg.RelDir+"."+e.Callee.Func.Name())
	}
	if len(impls) != 2 {
		t.Errorf("TotalArea dispatches to %v, want both Area implementations", impls)
	}
}

// TestMarkHot checks the transitive closure, its provenance, and that
// re-marking resets prior state.
func TestMarkHot(t *testing.T) {
	g := build(t)
	g.MarkHot(func(n *graph.Node) bool { return n.Func.Name() == "PredictBatch" })

	pb := nodeNamed(t, g, "PredictBatch")
	if !pb.Entry || !pb.Hot {
		t.Error("PredictBatch not marked as hot entry")
	}
	for _, name := range []string{"Do", "Helper", "alloc", "step"} {
		n := nodeNamed(t, g, name)
		if !n.Hot {
			t.Errorf("%s not hot", name)
		}
		if n.HotVia != pb {
			t.Errorf("%s HotVia = %v, want PredictBatch", name, n.HotVia)
		}
	}
	for _, name := range []string{"TotalArea", "Loop", "Area"} {
		for _, n := range g.Nodes {
			if n.Func.Name() == name && n.Hot {
				t.Errorf("%s unexpectedly hot", name)
			}
		}
	}

	// Re-marking replaces, not accumulates.
	g.MarkHot(func(n *graph.Node) bool { return n.Func.Name() == "TotalArea" })
	if pb.Hot || pb.Entry {
		t.Error("PredictBatch still hot after re-mark")
	}
	for _, n := range g.Nodes {
		if n.Func.Name() == "Area" && !n.Hot {
			t.Errorf("%s.Area not hot after re-mark", n.Pkg.RelDir)
		}
	}
}

// TestFind checks BFS path reporting and termination on recursion.
func TestFind(t *testing.T) {
	g := build(t)
	pb := nodeNamed(t, g, "PredictBatch")
	path, target := g.Find(pb, func(n *graph.Node) bool { return n.Func.Name() == "alloc" })
	if target == nil || target.Func.Name() != "alloc" {
		t.Fatalf("Find(alloc) target = %v", target)
	}
	// Shortest chain is PredictBatch → Helper → alloc (two edges).
	if len(path) != 2 || path[0].Callee.Func.Name() != "Helper" || path[1].Callee.Func.Name() != "alloc" {
		var names []string
		for _, e := range path {
			names = append(names, e.Callee.Func.Name())
		}
		t.Errorf("Find path = %v, want [Helper alloc]", names)
	}

	// A matching start returns an empty path.
	if path, target := g.Find(pb, func(n *graph.Node) bool { return n == pb }); target != pb || len(path) != 0 {
		t.Errorf("Find(self) = (%v, %v), want empty path to self", path, target)
	}

	// Recursion must terminate with no match.
	loop := nodeNamed(t, g, "Loop")
	if kinds := edgeKinds(loop); len(kinds["Loop"]) != 1 {
		t.Errorf("Loop self-edge = %v, want one", kinds["Loop"])
	}
	if _, target := g.Find(loop, func(*graph.Node) bool { return false }); target != nil {
		t.Errorf("Find over recursive subgraph found %v, want nil", target)
	}
}
