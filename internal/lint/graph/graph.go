// Package graph builds a static, package-level call graph over the
// type-checked module that internal/lint loads, so the analyzer suite can
// reason *interprocedurally*: a kernel that calls a helper that allocates,
// reads the clock, or ranges over a map is just as much a contract
// violation as a kernel that does so in its own body, and before this
// layer existed such helpers escaped every analyzer.
//
// The graph is deliberately syntactic-plus-types rather than SSA-based:
// it resolves exactly the call shapes this repository uses and documents
// the ones it cannot see.
//
//   - Direct calls to package functions and concrete methods, including
//     qualified cross-package calls (blas.Gemm, obs.StartSpan).
//   - Function and method values passed as arguments — the closure handed
//     to pool.Do / pool.DoCtx, a method value handed to a dispatcher —
//     produce a KindRef edge from the caller, because the callee runs on
//     the caller's behalf even though the call site lives elsewhere.
//   - Function literals are inlined into their enclosing declaration:
//     calls inside a closure are edges of the function that declared the
//     closure.  That matches how the intraprocedural analyzers already
//     treat closures (a loop inside a func literal is a loop) and makes
//     the pool.Do(..., func(lo, hi int) { ... }) idiom flow through
//     naturally.
//   - Calls through an interface method (solver.Operator.Apply above all)
//     fan out to every named module type whose method set implements the
//     interface, as a sound over-approximation of dynamic dispatch.
//
// Known blind spots, accepted to stay stdlib-only and fast: calls through
// plain function-typed variables (f := pick(); f()), methods promoted
// from embedded fields, and reflection.  None of those shapes appear on
// the kernel paths this graph polices, and new ones would be caught by
// review long before they reached a hot loop.
package graph

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Package is one type-checked package's worth of input to Build.  The
// lint loader owns parsing and type-checking; this mirror struct keeps
// the graph free of a dependency on package lint (which imports graph).
type Package struct {
	// Path is the module-qualified import path.
	Path string
	// RelDir is the directory relative to the module root ("" for the
	// root package), the key the lint policy tables use.
	RelDir string
	// Files are the parsed non-test files.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Kind classifies how an edge's callee comes to run.
type Kind int

const (
	// KindCall is a direct call of a package function or concrete method.
	KindCall Kind = iota
	// KindRef is a function or method value passed as a call argument
	// (a pool.Do worker body, a registered callback).
	KindRef
	// KindIface is a call through an interface method, resolved to one
	// concrete implementation; one call site yields one KindIface edge
	// per implementing module type.
	KindIface
)

// String names the edge kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindRef:
		return "ref"
	case KindIface:
		return "iface"
	}
	return "call"
}

// Edge is one caller→callee connection at a specific call site.
type Edge struct {
	Callee *Node
	// Pos is the call (or argument) position in the caller's body.
	Pos token.Pos
	// Kind records how the callee is reached.
	Kind Kind
}

// Node is one declared function or method with a body in the module.
type Node struct {
	// Func is the canonical go/types object.
	Func *types.Func
	// Decl is the declaration; its body includes any function literals,
	// whose calls are inlined into this node's edges.
	Decl *ast.FuncDecl
	// Pkg is the declaring package.
	Pkg *Package
	// Out lists the resolved outgoing edges in source order.
	Out []Edge

	// Hot is set by MarkHot on every node reachable from an entry.
	Hot bool
	// Entry is set by MarkHot on the entry nodes themselves.
	Entry bool
	// HotVia is the entry node through which this node was first
	// reached (itself for entries); nil when not hot.  Analyzers use it
	// to name the kernel entry point in diagnostics.
	HotVia *Node
}

// Graph is the module's call graph.
type Graph struct {
	Fset *token.FileSet
	// Nodes lists every declared function in deterministic order:
	// packages in load order, declarations in file/position order.
	Nodes []*Node

	byFunc map[*types.Func]*Node
}

// Build constructs the call graph for the given packages, which must all
// come from one type-checker universe (the lint loader's chained
// importer guarantees that: a *types.Func for blas.Gemm is the same
// object whether seen from its declaration or from a caller in core).
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{Fset: fset, byFunc: make(map[*types.Func]*Node)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Func: fn, Decl: fd, Pkg: pkg}
				g.byFunc[fn] = n
				g.Nodes = append(g.Nodes, n)
			}
		}
	}
	ix := buildIfaceIndex(pkgs)
	for _, n := range g.Nodes {
		g.resolveEdges(n, ix)
	}
	return g
}

// NodeOf returns the node declaring fn, or nil for functions without a
// module body (stdlib, interface methods, externally linked).
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// resolveEdges walks one declaration (function literals included) and
// records every call and function-value edge whose callee has a node.
func (g *Graph) resolveEdges(n *Node, ix *ifaceIndex) {
	info := n.Pkg.Info
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				g.addEdge(n, fn, call.Pos(), KindCall)
			}
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[fun]; ok {
				if fn, ok := sel.Obj().(*types.Func); ok {
					if types.IsInterface(sel.Recv()) {
						for _, impl := range ix.implementations(sel.Recv(), fn) {
							g.addEdge(n, impl, call.Pos(), KindIface)
						}
					} else {
						g.addEdge(n, fn, call.Pos(), KindCall)
					}
				}
			} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				// Qualified call of another package's function.
				g.addEdge(n, fn, call.Pos(), KindCall)
			}
		}
		// Function and method values passed as arguments: the callee
		// runs on the caller's behalf (pool.Do(workers, n, shardBody)).
		// Function literals need no edge — their bodies are walked as
		// part of this declaration.
		for _, arg := range call.Args {
			switch a := ast.Unparen(arg).(type) {
			case *ast.Ident:
				if fn, ok := info.Uses[a].(*types.Func); ok {
					g.addEdge(n, fn, a.Pos(), KindRef)
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[a.Sel].(*types.Func); ok {
					g.addEdge(n, fn, a.Pos(), KindRef)
				}
			}
		}
		return true
	})
}

// addEdge records caller→fn when fn is declared in the module, skipping
// exact duplicates (the same callee at the same position can be seen as
// both a call and a selector use).
func (g *Graph) addEdge(caller *Node, fn *types.Func, pos token.Pos, kind Kind) {
	callee := g.byFunc[fn]
	if callee == nil {
		return
	}
	for _, e := range caller.Out {
		if e.Callee == callee && e.Pos == pos {
			return
		}
	}
	caller.Out = append(caller.Out, Edge{Callee: callee, Pos: pos, Kind: kind})
}

// MarkHot flags every node reachable from the entry predicate, breadth
// first in deterministic node order, recording on each hot node the entry
// through which it was first reached.  Calling MarkHot again resets the
// marking.
func (g *Graph) MarkHot(isEntry func(*Node) bool) {
	var queue []*Node
	for _, n := range g.Nodes {
		n.Hot, n.Entry, n.HotVia = false, false, nil
	}
	for _, n := range g.Nodes {
		if isEntry(n) {
			n.Hot, n.Entry, n.HotVia = true, true, n
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if !e.Callee.Hot {
				e.Callee.Hot = true
				e.Callee.HotVia = n.HotVia
				queue = append(queue, e.Callee)
			}
		}
	}
}

// Find runs a breadth-first search from start and returns the shortest
// edge path to the first node satisfying pred, together with that node.
// A start node satisfying pred yields an empty path.  Cycles are handled;
// (nil, nil) means no reachable node satisfies pred.
func (g *Graph) Find(start *Node, pred func(*Node) bool) ([]Edge, *Node) {
	if pred(start) {
		return []Edge{}, start
	}
	type arrival struct {
		from *Node
		edge Edge
	}
	preds := map[*Node]arrival{}
	seen := map[*Node]bool{start: true}
	queue := []*Node{start}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			preds[e.Callee] = arrival{from: n, edge: e}
			if pred(e.Callee) {
				var path []Edge
				for at := e.Callee; at != start; at = preds[at].from {
					path = append([]Edge{preds[at].edge}, path...)
				}
				return path, e.Callee
			}
			queue = append(queue, e.Callee)
		}
	}
	return nil, nil
}

// ifaceIndex resolves interface method calls to the named module types
// implementing them.
type ifaceIndex struct {
	named []*types.Named
}

func buildIfaceIndex(pkgs []*Package) *ifaceIndex {
	ix := &ifaceIndex{}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				ix.named = append(ix.named, named)
			}
		}
	}
	return ix
}

// implementations returns the concrete module methods a call to iface
// method m may dispatch to, in deterministic declaration order.
func (ix *ifaceIndex) implementations(iface types.Type, m *types.Func) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range ix.named {
		if types.IsInterface(named.Underlying()) {
			continue
		}
		if !types.Implements(named, it) && !types.Implements(types.NewPointer(named), it) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if mm := named.Method(i); mm.Name() == m.Name() {
				out = append(out, mm)
			}
		}
	}
	return out
}
