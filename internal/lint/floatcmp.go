package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != comparisons with floating-point operands.
// After any arithmetic, exact float equality is almost never the intended
// predicate — and in this codebase a drifting comparison silently changes
// which fast path a kernel takes, breaking bitwise equivalence between
// sequential and parallel twins.  The legitimate exceptions are exact
// sparsity/fast-path guards (v == 0, beta == 1) whose bit-exactness is
// part of the kernel contract; those must carry
// //srdalint:ignore floatcmp <reason> so each one is a reviewed decision.
// Test files are not checked.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "no ==/!= on floating-point operands outside annotated exact guards",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	isFloat := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	pass.inspectFiles(func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if isFloat(be.X) || isFloat(be.Y) {
			pass.Reportf(be.OpPos, "%s compares floating-point values exactly; use a tolerance, or annotate an exact guard with //srdalint:ignore floatcmp <reason>", be.Op)
		}
		return true
	})
}
