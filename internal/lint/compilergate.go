package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The compiler gate pins the *toolchain's* view of the kernels the way
// BENCH_0.json pins their measured speed.  `go build -gcflags='-m=2
// -d=ssa/check_bce/debug=1'` reports two facts srdalint's AST analyzers
// cannot see: which values escape analysis sends to the heap, and which
// indexing operations keep a runtime bounds check after the
// bounds-check-elimination pass.  Both are exactly the properties the
// hand-written kernels were shaped around — hoisted row slices exist to
// let BCE fire, value receivers exist to keep scratch on the stack — and
// both silently regress under innocent-looking edits (add a defer,
// capture a variable in a closure, reorder a bounds guard) without any
// test failing.
//
// lint_budget.json, checked in at the module root, records the per-
// function escape and bounds-check counts for the gated packages.  The
// gate re-derives the counts on every run and fails when any function
// *gains* escapes or bounds checks against its budget (a new function
// starts from a zero budget).  Improvements and deleted functions are
// reported as notes so the budget can be re-baselined deliberately with
// -update-budget.  Counts are toolchain-sensitive, so the budget records
// the Go version it was derived with and the gate warns on mismatch.

// GatedDirs are the packages whose compiler facts the budget pins: the
// kernel packages plus internal/core, whose batch-predict prologue is the
// entry to the hot path.
var GatedDirs = []string{
	"internal/blas", "internal/mat", "internal/sparse", "internal/core",
}

// BudgetFile is the budget's path relative to the module root.
const BudgetFile = "lint_budget.json"

// FuncFacts are the compiler-derived counts for one function.
type FuncFacts struct {
	// Escapes counts values escape analysis moved to the heap inside the
	// function: "escapes to heap" and "moved to heap" diagnostics.
	Escapes int `json:"escapes"`
	// Bounds counts the IsInBounds/IsSliceInBounds checks the SSA
	// bounds-check-elimination pass could not remove.
	Bounds int `json:"bounds"`
}

// Budget is the checked-in lint_budget.json: per-package, per-function
// compiler facts plus the toolchain that derived them.
type Budget struct {
	Schema   int                             `json:"schema"`
	Go       string                          `json:"go"`
	Packages map[string]map[string]FuncFacts `json:"packages"`
}

// CompilerDiag is one parsed escape or bounds diagnostic.
type CompilerDiag struct {
	File string // as printed by the compiler (module-relative with ./ stripped)
	Line int
	Col  int
	Kind string // "escape" or "bounds"
	What string // the diagnostic text, for messages
}

// ParseCompilerDiags extracts the escape and bounds-check diagnostics
// from `go build -gcflags='-m=2 -d=ssa/check_bce/debug=1'` output.  With
// -m=2 the compiler prints each escaping value twice — once introducing
// the flow explanation (trailing colon) and once bare — so diagnostics
// are deduplicated by position and text.
func ParseCompilerDiags(output string) []CompilerDiag {
	var out []CompilerDiag
	seen := make(map[string]bool)
	for _, line := range strings.Split(output, "\n") {
		line = strings.TrimSpace(line)
		file, ln, col, msg, ok := splitDiagLine(line)
		if !ok {
			continue
		}
		msg = strings.TrimSuffix(msg, ":")
		var kind string
		switch {
		case strings.HasSuffix(msg, "escapes to heap"), strings.HasPrefix(msg, "moved to heap"):
			kind = "escape"
		case msg == "Found IsInBounds", msg == "Found IsSliceInBounds":
			kind = "bounds"
		default:
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, CompilerDiag{File: file, Line: ln, Col: col, Kind: kind, What: msg})
	}
	return out
}

// splitDiagLine parses "path/file.go:line:col: message".
func splitDiagLine(line string) (file string, ln, col int, msg string, ok bool) {
	goIdx := strings.Index(line, ".go:")
	if goIdx < 0 {
		return "", 0, 0, "", false
	}
	file = strings.TrimPrefix(line[:goIdx+3], "./")
	rest := line[goIdx+4:]
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) < 3 {
		return "", 0, 0, "", false
	}
	var err error
	if ln, err = strconv.Atoi(parts[0]); err != nil {
		return "", 0, 0, "", false
	}
	if col, err = strconv.Atoi(parts[1]); err != nil {
		return "", 0, 0, "", false
	}
	return file, ln, col, strings.TrimSpace(parts[2]), true
}

// funcSpan locates one function declaration for fact attribution.
type funcSpan struct {
	name       string // display name: "Dot", "(*Dense).At"
	start, end int    // line range in the file
}

// funcSpans maps each module-relative file path of the gated packages to
// its function declarations.
func (m *Module) funcSpans(dirs []string) map[string][]funcSpan {
	spans := make(map[string][]funcSpan)
	for _, pkg := range m.Pkgs {
		if !underAny(pkg.RelDir, dirs) {
			continue
		}
		for _, f := range pkg.Files {
			pos := m.Fset.Position(f.Pos())
			rel, err := filepath.Rel(m.Root, pos.Filename)
			if err != nil {
				continue
			}
			rel = filepath.ToSlash(rel)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				spans[rel] = append(spans[rel], funcSpan{
					name:  declDisplayName(fd),
					start: m.Fset.Position(fd.Pos()).Line,
					end:   m.Fset.Position(fd.End()).Line,
				})
			}
		}
	}
	return spans
}

// declDisplayName renders a FuncDecl as "Name" or "(*Recv).Name".
func declDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	recv := fd.Recv.List[0].Type
	switch t := recv.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + fd.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// AttributeFacts buckets parsed diagnostics into per-package,
// per-function counts using the loaded module's declaration ranges.
// Diagnostics outside any gated function (package-level initializers,
// files outside the gated dirs) are dropped.
func (m *Module) AttributeFacts(diags []CompilerDiag, dirs []string) map[string]map[string]FuncFacts {
	spans := m.funcSpans(dirs)
	out := make(map[string]map[string]FuncFacts)
	for _, d := range diags {
		fns, ok := spans[d.File]
		if !ok {
			continue
		}
		for _, fn := range fns {
			if d.Line < fn.start || d.Line > fn.end {
				continue
			}
			pkgRel := filepath.ToSlash(filepath.Dir(d.File))
			if out[pkgRel] == nil {
				out[pkgRel] = make(map[string]FuncFacts)
			}
			f := out[pkgRel][fn.name]
			switch d.Kind {
			case "escape":
				f.Escapes++
			case "bounds":
				f.Bounds++
			}
			out[pkgRel][fn.name] = f
			break
		}
	}
	return out
}

// CompareBudget checks current facts against the committed budget.
// failures are regressions (a function gained escapes or bounds checks —
// new functions measure against a zero budget); notes are non-fatal
// drift (improvements, deleted functions, toolchain mismatch) that
// -update-budget re-baselines.
func CompareBudget(budget *Budget, current map[string]map[string]FuncFacts, goVersion string) (failures, notes []string) {
	if budget.Go != "" && budget.Go != goVersion {
		notes = append(notes, fmt.Sprintf("budget was derived with %s, running %s; counts are toolchain-sensitive — re-baseline with -update-budget if drift is toolchain-only", budget.Go, goVersion))
	}
	for _, pkg := range sortedKeys(current) {
		for _, fn := range sortedKeys(current[pkg]) {
			got := current[pkg][fn]
			want := budget.Packages[pkg][fn] // zero value when unbudgeted
			_, known := budget.Packages[pkg][fn]
			if got.Escapes > want.Escapes {
				failures = append(failures, regression(pkg, fn, "heap escape", got.Escapes, want.Escapes, known))
			}
			if got.Bounds > want.Bounds {
				failures = append(failures, regression(pkg, fn, "bounds check", got.Bounds, want.Bounds, known))
			}
			if got.Escapes < want.Escapes || got.Bounds < want.Bounds {
				notes = append(notes, fmt.Sprintf("%s.%s improved (escapes %d→%d, bounds %d→%d); run -update-budget to lock in the gain",
					pkg, fn, want.Escapes, got.Escapes, want.Bounds, got.Bounds))
			}
		}
	}
	for _, pkg := range sortedKeys(budget.Packages) {
		for _, fn := range sortedKeys(budget.Packages[pkg]) {
			if _, ok := current[pkg][fn]; !ok {
				if f := budget.Packages[pkg][fn]; f.Escapes > 0 || f.Bounds > 0 {
					notes = append(notes, fmt.Sprintf("%s.%s is budgeted but no longer reports any facts (deleted, renamed, or fully optimized); run -update-budget", pkg, fn))
				}
			}
		}
	}
	return failures, notes
}

func regression(pkg, fn, what string, got, want int, known bool) string {
	suffix := ""
	if !known {
		suffix = " (new function: budget starts at zero)"
	}
	return fmt.Sprintf("%s.%s gained %s%s: %d budgeted, %d now%s — hoist the value/guard the index, or re-baseline deliberately with -update-budget",
		pkg, fn, what, plural(got-want), want, got, suffix)
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// ReadBudget loads the budget file; a missing file returns an empty
// budget so the first -compiler-gate run fails loudly on every nonzero
// count instead of erroring.
func ReadBudget(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Budget{Schema: 1, Packages: map[string]map[string]FuncFacts{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
	}
	if b.Packages == nil {
		b.Packages = map[string]map[string]FuncFacts{}
	}
	return &b, nil
}

// WriteBudget writes the budget deterministically (sorted keys, trailing
// newline) so re-baselining produces minimal diffs.
func WriteBudget(path string, b *Budget) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
