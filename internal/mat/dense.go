// Package mat provides a row-major dense matrix type and the operations on
// it that the SRDA pipeline needs: products (including transposed and
// Gram-matrix forms), row/column statistics, centering, slicing views, and
// norms.  It is a thin, allocation-conscious layer over internal/blas.
package mat

import (
	"fmt"
	"math"

	"srda/internal/blas"
)

// Dense is an r×c matrix of float64 stored row-major.  The zero value is an
// empty matrix.  Data is len r*Stride with Stride >= c; a Dense whose
// Stride exceeds c is a view into a larger allocation and shares storage
// with it.
type Dense struct {
	Rows, Cols int
	Stride     int
	Data       []float64
}

// NewDense allocates a zeroed r×c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("mat: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps an existing row-major slice (len must be exactly r*c)
// without copying.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d != %d*%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Stride: c, Data: data}
}

// FromRows builds a matrix whose rows are copies of the given slices, which
// must all share one length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic("mat: ragged rows in FromRows")
		}
		copy(m.RowView(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*m.Stride+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.Data[i*m.Stride+j]
}

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.Data[i*m.Stride+j] = v
}

func (m *Dense) boundsCheck(i, j int) {
	if i < 0 || i >= m.Rows || j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.Rows, m.Cols))
	}
}

// RowView returns row i as a mutable slice sharing the matrix storage.
func (m *Dense) RowView(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic("mat: row index out of range")
	}
	return m.Data[i*m.Stride : i*m.Stride+m.Cols]
}

// ColCopy copies column j into dst (allocated when nil) and returns it.
func (m *Dense) ColCopy(j int, dst []float64) []float64 {
	if j < 0 || j >= m.Cols {
		panic("mat: column index out of range")
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.Data[i*m.Stride+j]
	}
	return dst
}

// SetCol writes src into column j.
func (m *Dense) SetCol(j int, src []float64) {
	if len(src) != m.Rows {
		panic("mat: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Stride+j] = src[i]
	}
}

// Slice returns a view of rows [r0, r1) and columns [c0, c1) sharing
// storage with m.
func (m *Dense) Slice(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > m.Rows || c0 < 0 || c1 > m.Cols || r0 > r1 || c0 > c1 {
		panic("mat: bad slice bounds")
	}
	return &Dense{
		Rows:   r1 - r0,
		Cols:   c1 - c0,
		Stride: m.Stride,
		Data:   m.Data[r0*m.Stride+c0 : (r1-1)*m.Stride+c1],
	}
}

// Clone returns a compact deep copy (Stride == Cols).
func (m *Dense) Clone() *Dense {
	out := NewDense(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		copy(out.RowView(i), m.RowView(i))
	}
	return out
}

// CopyFrom overwrites m with src; shapes must match.
func (m *Dense) CopyFrom(src *Dense) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic("mat: shape mismatch in CopyFrom")
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.RowView(i), src.RowView(i))
	}
}

// T returns a compact transposed copy.
func (m *Dense) T() *Dense {
	out := NewDense(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j, v := range row {
			out.Data[j*out.Stride+i] = v
		}
	}
	return out
}

// Zero sets all elements to zero.
func (m *Dense) Zero() {
	for i := 0; i < m.Rows; i++ {
		row := m.RowView(i)
		for j := range row {
			row[j] = 0
		}
	}
}

// Scale multiplies every element by alpha.
func (m *Dense) Scale(alpha float64) {
	for i := 0; i < m.Rows; i++ {
		blas.Scal(alpha, m.RowView(i))
	}
}

// AddScaled computes m += alpha*b elementwise; shapes must match.
func (m *Dense) AddScaled(alpha float64, b *Dense) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("mat: shape mismatch in AddScaled")
	}
	for i := 0; i < m.Rows; i++ {
		blas.Axpy(alpha, b.RowView(i), m.RowView(i))
	}
}

// Mul computes C = A*B, allocating C.  Panics on inner-dimension mismatch.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	blas.Gemm(a.Rows, b.Cols, a.Cols, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// MulTA computes C = Aᵀ*B without materializing Aᵀ.
func MulTA(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: MulTA dimension mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Cols, b.Cols)
	blas.GemmTA(a.Cols, b.Cols, a.Rows, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// MulTB computes C = A*Bᵀ without materializing Bᵀ.
func MulTB(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: MulTB dimension mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Rows)
	blas.GemmTB(a.Rows, b.Rows, a.Cols, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// Gram computes the n×n Gram matrix AᵀA of an m×n matrix A, exploiting
// symmetry (only the upper triangle is computed, then mirrored).  It is a
// full-range call of the same helpers ParGram shards, so the two are
// bitwise twins by construction.
func Gram(a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	gramUpperRange(a, g, 0, n)
	gramMirrorRange(g, 0, n)
	return g
}

// GramT computes the m×m outer Gram matrix AAᵀ of an m×n matrix A.  Like
// Gram it is a full-range call of the helper ParGramT shards.
func GramT(a *Dense) *Dense {
	m := a.Rows
	g := NewDense(m, m)
	gramTRange(a, g, 0, m)
	return g
}

// MulVec computes y = A*x, allocating y when dst is nil.
func (m *Dense) MulVec(x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: MulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	blas.Gemv(m.Rows, m.Cols, 1, m.Data, m.Stride, x, 0, dst)
	return dst
}

// MulTVec computes y = Aᵀ*x, allocating y when dst is nil.
func (m *Dense) MulTVec(x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: MulTVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	blas.GemvT(m.Rows, m.Cols, 1, m.Data, m.Stride, x, 0, dst)
	return dst
}

// ColMeans returns the per-column mean of m.
func (m *Dense) ColMeans() []float64 {
	mu := make([]float64, m.Cols)
	if m.Rows == 0 {
		return mu
	}
	for i := 0; i < m.Rows; i++ {
		blas.Axpy(1, m.RowView(i), mu)
	}
	blas.Scal(1/float64(m.Rows), mu)
	return mu
}

// CenterRows subtracts the column means from every row in place and
// returns the means (so callers can center test data consistently).
func (m *Dense) CenterRows() []float64 {
	mu := m.ColMeans()
	for i := 0; i < m.Rows; i++ {
		blas.Axpy(-1, mu, m.RowView(i))
	}
	return mu
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	var scale, ssq float64
	ssq = 1
	for i := 0; i < m.Rows; i++ {
		for _, v := range m.RowView(i) {
			if v == 0 { //srdalint:ignore floatcmp exact zero skip keeps the scaled-ssq update well-defined
				continue
			}
			a := math.Abs(v)
			if scale < a {
				r := scale / a
				ssq = 1 + ssq*r*r
				scale = a
			} else {
				r := a / scale
				ssq += r * r
			}
		}
	}
	if scale == 0 { //srdalint:ignore floatcmp an all-zero matrix has exact norm 0
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped matrices; useful in tests.
func MaxAbsDiff(a, b *Dense) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("mat: shape mismatch in MaxAbsDiff")
	}
	var worst float64
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.RowView(i), b.RowView(i)
		for j := range ra {
			if d := math.Abs(ra[j] - rb[j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// Equalish reports whether a and b agree elementwise within eps.
func Equalish(a, b *Dense, eps float64) bool {
	return a.Rows == b.Rows && a.Cols == b.Cols && MaxAbsDiff(a, b) <= eps
}

// String renders small matrices for debugging; large ones are abbreviated.
func (m *Dense) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Dense %dx%d", m.Rows, m.Cols)
	if m.Rows > maxShow || m.Cols > maxShow {
		return s
	}
	for i := 0; i < m.Rows; i++ {
		s += "\n"
		for j := 0; j < m.Cols; j++ {
			//srdalint:ignore hotalloc cold debug rendering, capped at 8x8 by maxShow
			s += fmt.Sprintf(" % .4g", m.At(i, j))
		}
	}
	return s
}
