package mat

import (
	"math"
	"math/rand"
	"testing"
)

var matEqWorkers = []int{1, 2, 4, 7}

// matEqShapes covers degenerate, unroll-straddling, and over-threshold
// (r*c*k >= 32Ki) shapes so both the sequential fallback and the sharded
// path of every Par* function are exercised.
var matEqShapes = []struct{ r, c int }{
	{0, 0}, {0, 4}, {4, 0}, {1, 1}, {3, 7}, {64, 65}, {65, 64}, {130, 300}, {300, 130},
}

func matBitsEqual(t *testing.T, name string, w int, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s workers=%d: shape %dx%d, want %dx%d", name, w, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := 0; i < got.Rows; i++ {
		rg, rw := got.RowView(i), want.RowView(i)
		for j := range rg {
			if math.Float64bits(rg[j]) != math.Float64bits(rw[j]) {
				t.Fatalf("%s workers=%d: (%d,%d) = %v, sequential %v", name, w, i, j, rg[j], rw[j])
			}
		}
	}
}

func TestParMulFamilyBitwiseEqualsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, sh := range matEqShapes {
		a := randDense(rng, sh.r, sh.c)
		b := randDense(rng, sh.c, sh.r)
		bt := randDense(rng, sh.r, sh.c) // same shape as a for TB; same rows for TA
		wantMul := Mul(a, b)
		wantTA := MulTA(a, bt)
		wantTB := MulTB(a, bt)
		for _, w := range matEqWorkers {
			matBitsEqual(t, "ParMul", w, ParMul(w, a, b), wantMul)
			matBitsEqual(t, "ParMulTA", w, ParMulTA(w, a, bt), wantTA)
			matBitsEqual(t, "ParMulTB", w, ParMulTB(w, a, bt), wantTB)
		}
	}
}

func TestParGramBitwiseEqualsGram(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for _, sh := range matEqShapes {
		a := randDense(rng, sh.r, sh.c)
		wantG := Gram(a)
		wantGT := GramT(a)
		for _, w := range matEqWorkers {
			matBitsEqual(t, "ParGram", w, ParGram(w, a), wantG)
			matBitsEqual(t, "ParGramT", w, ParGramT(w, a), wantGT)
		}
	}
}

func TestParMulVecBitwiseEqualsMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, sh := range matEqShapes {
		a := randDense(rng, sh.r, sh.c)
		x := make([]float64, sh.c)
		xt := make([]float64, sh.r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range xt {
			xt[i] = rng.NormFloat64()
		}
		want := a.MulVec(x, nil)
		wantT := a.MulTVec(xt, nil)
		for _, w := range matEqWorkers {
			got := a.ParMulVec(w, x, nil)
			gotT := a.ParMulTVec(w, xt, nil)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("ParMulVec workers=%d: [%d] %v vs %v", w, i, got[i], want[i])
				}
			}
			for j := range wantT {
				if math.Float64bits(gotT[j]) != math.Float64bits(wantT[j]) {
					t.Fatalf("ParMulTVec workers=%d: [%d] %v vs %v", w, j, gotT[j], wantT[j])
				}
			}
		}
	}
}

// TestParMulOnSlicedViews mirrors TestMulOnSlicedViews: sharding must
// respect strides of non-compact views.
func TestParMulOnSlicedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	big := randDense(rng, 140, 90)
	a := big.Slice(5, 133, 3, 50)
	b := randDense(rng, a.Cols, 40)
	matBitsEqual(t, "ParMul/view", 7, ParMul(7, a, b), Mul(a, b))
	matBitsEqual(t, "ParGram/view", 7, ParGram(7, a), Gram(a))
	matBitsEqual(t, "ParGramT/view", 7, ParGramT(7, a), GramT(a))
}
