package mat

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randDense(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestNewDenseAndAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2)=%v want 7", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("zero value not zero: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := NewDense(2, 2)
	for _, idx := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for index %v", idx)
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestFromRowsAndRowView(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Fatalf("FromRows wrong: %v", m)
	}
	rv := m.RowView(0)
	rv[1] = 9
	if m.At(0, 1) != 9 {
		t.Fatal("RowView must alias storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("I[%d][%d]=%v", i, j, id.At(i, j))
			}
		}
	}
}

func TestColCopySetCol(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	col := m.ColCopy(1, nil)
	want := []float64{2, 4, 6}
	for i := range col {
		if col[i] != want[i] {
			t.Fatalf("col=%v", col)
		}
	}
	m.SetCol(0, []float64{7, 8, 9})
	if m.At(2, 0) != 9 {
		t.Fatalf("SetCol failed: %v", m)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	m := randDense(rand.New(rand.NewSource(1)), 5, 5)
	v := m.Slice(1, 4, 2, 5)
	if v.Rows != 3 || v.Cols != 3 {
		t.Fatalf("slice dims %dx%d", v.Rows, v.Cols)
	}
	if v.At(0, 0) != m.At(1, 2) {
		t.Fatal("slice content wrong")
	}
	v.Set(0, 0, 42)
	if m.At(1, 2) != 42 {
		t.Fatal("slice must share storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must not share storage")
	}
}

func TestTransposeOfSlice(t *testing.T) {
	m := randDense(rand.New(rand.NewSource(2)), 6, 4)
	v := m.Slice(1, 5, 0, 3)
	tt := v.T()
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < v.Cols; j++ {
			if tt.At(j, i) != v.At(i, j) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulSmallKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equalish(c, want, 1e-12) {
		t.Fatalf("c=%v", c)
	}
}

func TestMulDimensionPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulTAEqualsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := randDense(rng, 20, 7), randDense(rng, 20, 9)
	got := MulTA(a, b)
	want := Mul(a.T(), b)
	if !Equalish(got, want, 1e-9) {
		t.Fatalf("MulTA diff %v", MaxAbsDiff(got, want))
	}
}

func TestMulTBEqualsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randDense(rng, 8, 15), randDense(rng, 11, 15)
	got := MulTB(a, b)
	want := Mul(a, b.T())
	if !Equalish(got, want, 1e-9) {
		t.Fatalf("MulTB diff %v", MaxAbsDiff(got, want))
	}
}

func TestGramEqualsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 30, 12)
	got := Gram(a)
	want := Mul(a.T(), a)
	if !Equalish(got, want, 1e-9) {
		t.Fatalf("Gram diff %v", MaxAbsDiff(got, want))
	}
	// symmetry exactly
	for i := 0; i < got.Rows; i++ {
		for j := 0; j < got.Cols; j++ {
			if got.At(i, j) != got.At(j, i) {
				t.Fatal("Gram not exactly symmetric")
			}
		}
	}
}

func TestGramTEqualsExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randDense(rng, 9, 25)
	got := GramT(a)
	want := Mul(a, a.T())
	if !Equalish(got, want, 1e-9) {
		t.Fatalf("GramT diff %v", MaxAbsDiff(got, want))
	}
}

func TestMulVecAndMulTVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := a.MulVec([]float64{1, 1, 1}, nil)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec=%v", y)
	}
	z := a.MulTVec([]float64{1, 1}, nil)
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("MulTVec=%v", z)
	}
}

func TestColMeansAndCenterRows(t *testing.T) {
	m := FromRows([][]float64{{1, 10}, {3, 20}})
	mu := m.ColMeans()
	if mu[0] != 2 || mu[1] != 15 {
		t.Fatalf("means=%v", mu)
	}
	m.CenterRows()
	for j := 0; j < 2; j++ {
		var s float64
		for i := 0; i < 2; i++ {
			s += m.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("column %d not centered: sum=%v", j, s)
		}
	}
}

func TestNorm(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	if got := m.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm=%v want 5", got)
	}
	if got := NewDense(2, 2).Norm(); got != 0 {
		t.Fatalf("zero Norm=%v", got)
	}
}

func TestScaleAddScaled(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{1, 1}, {1, 1}})
	m.Scale(2)
	m.AddScaled(-1, b)
	want := FromRows([][]float64{{1, 3}, {5, 7}})
	if !Equalish(m, want, 1e-12) {
		t.Fatalf("m=%v", m)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q, r, s := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a, b, c := randDense(rng, p, q), randDense(rng, q, r), randDense(rng, r, s)
		lhs := Mul(Mul(a, b), c)
		rhs := Mul(a, Mul(b, c))
		return Equalish(lhs, rhs, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 1+rng.Intn(12), 1+rng.Intn(12))
		return Equalish(a.T().T(), a, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulOnSlicedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	big := randDense(rng, 10, 10)
	a := big.Slice(0, 4, 0, 6)
	b := big.Slice(2, 8, 1, 4)
	got := Mul(a, b)
	want := Mul(a.Clone(), b.Clone())
	if !Equalish(got, want, 1e-10) {
		t.Fatal("Mul must handle strided views")
	}
}

func TestNewDenseDataAndCopyFromZero(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := NewDenseData(2, 3, data)
	if m.At(1, 2) != 6 {
		t.Fatal("NewDenseData wrong layout")
	}
	data[0] = 9
	if m.At(0, 0) != 9 {
		t.Fatal("NewDenseData must not copy")
	}
	dst := NewDense(2, 3)
	dst.CopyFrom(m)
	if dst.At(0, 0) != 9 || dst.At(1, 2) != 6 {
		t.Fatal("CopyFrom wrong")
	}
	m.Zero()
	if m.At(0, 0) != 0 || m.At(1, 2) != 0 {
		t.Fatal("Zero failed")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("bad data length accepted")
			}
		}()
		NewDenseData(2, 2, data)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("shape mismatch in CopyFrom accepted")
			}
		}()
		dst.CopyFrom(NewDense(3, 3))
	}()
}

func TestStringRendersSmallAndAbbreviatesLarge(t *testing.T) {
	small := FromRows([][]float64{{1, 2}, {3, 4}})
	s := small.String()
	if !strings.Contains(s, "Dense 2x2") || !strings.Contains(s, "3") {
		t.Fatalf("String: %q", s)
	}
	big := NewDense(20, 20)
	if strings.Contains(big.String(), "\n") {
		t.Fatal("large matrix should render as summary only")
	}
}
