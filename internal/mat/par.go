package mat

// Parallel twins of the dense products, built on internal/pool with the
// same contract as internal/blas: shard only over independent output rows,
// keep per-element arithmetic order unchanged, and the results are bitwise
// identical to the sequential functions for every worker count.  The
// sequential Gram/GramT are full-range calls of the range helpers below,
// so twin-ness is structural.

import (
	"fmt"

	"srda/internal/blas"
	"srda/internal/pool"
)

// parMinFlops mirrors the internal/blas threshold: products below ~32Ki
// multiply-adds are not worth a pool handoff.
const parMinFlops = 1 << 15

// ParMul computes C = A*B like Mul, with rows of C sharded across the
// worker pool (workers <= 0 means GOMAXPROCS, 1 forces sequential).
func ParMul(workers int, a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: ParMul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	blas.ParGemm(workers, a.Rows, b.Cols, a.Cols, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// ParMulTA computes C = Aᵀ*B like MulTA, sharded across the worker pool.
func ParMulTA(workers int, a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("mat: ParMulTA dimension mismatch %dx%d ᵀ* %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Cols, b.Cols)
	blas.ParGemmTA(workers, a.Cols, b.Cols, a.Rows, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// ParMulTB computes C = A*Bᵀ like MulTB, sharded across the worker pool.
func ParMulTB(workers int, a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: ParMulTB dimension mismatch %dx%d *ᵀ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Rows)
	blas.ParGemmTB(workers, a.Rows, b.Rows, a.Cols, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return c
}

// ParMulVec computes y = A*x like MulVec, sharded across the worker pool.
func (m *Dense) ParMulVec(workers int, x, dst []float64) []float64 {
	if len(x) != m.Cols {
		panic("mat: ParMulVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Rows)
	}
	blas.ParGemv(workers, m.Rows, m.Cols, 1, m.Data, m.Stride, x, 0, dst)
	return dst
}

// ParMulTVec computes y = Aᵀ*x like MulTVec, sharded across the worker pool.
func (m *Dense) ParMulTVec(workers int, x, dst []float64) []float64 {
	if len(x) != m.Rows {
		panic("mat: ParMulTVec length mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.Cols)
	}
	blas.ParGemvT(workers, m.Rows, m.Cols, 1, m.Data, m.Stride, x, 0, dst)
	return dst
}

// gramUpperRange accumulates rows [ilo, ihi) of the upper triangle of
// G = AᵀA by rank-one contributions: output row i receives one Axpy per
// matrix row p, in ascending p, regardless of how the i range is sharded
// — which is exactly what keeps Gram and ParGram bitwise twins.
func gramUpperRange(a, g *Dense, ilo, ihi int) {
	n := a.Cols
	for p := 0; p < a.Rows; p++ {
		row := a.RowView(p)
		for i := ilo; i < ihi; i++ {
			v := row[i]
			if v == 0 { //srdalint:ignore floatcmp exact sparsity skip shared with the sequential Gram twin
				continue
			}
			blas.Axpy(v, row[i:], g.Data[i*g.Stride+i:i*g.Stride+n])
		}
	}
}

// gramMirrorRange copies the finished upper triangle into rows [jlo, jhi)
// of the lower triangle.
func gramMirrorRange(g *Dense, jlo, jhi int) {
	for j := jlo; j < jhi; j++ {
		row := g.Data[j*g.Stride:]
		for i := 0; i < j; i++ {
			row[i] = g.Data[i*g.Stride+j]
		}
	}
}

// ParGram computes AᵀA like Gram, sharding the upper-triangle
// accumulation and then the mirror over output rows; the pool barrier
// between the passes guarantees the mirror reads only final values.
// Bitwise identical to Gram for any workers.
func ParGram(workers int, a *Dense) *Dense {
	n := a.Cols
	g := NewDense(n, n)
	if workers == 1 || n < 2 || a.Rows*n*n < parMinFlops {
		gramUpperRange(a, g, 0, n)
		gramMirrorRange(g, 0, n)
		return g
	}
	pool.Do(workers, n, func(lo, hi int) {
		gramUpperRange(a, g, lo, hi)
	})
	pool.Do(workers, n, func(lo, hi int) {
		gramMirrorRange(g, lo, hi)
	})
	return g
}

// gramTRange computes rows [ilo, ihi) of G = AAᵀ by row-pair dot
// products, mirroring each result to (j, i).  Element (j, i) with i < j
// is written only by the span that owns i, so concurrent spans never
// write the same element.
func gramTRange(a, g *Dense, ilo, ihi int) {
	for i := ilo; i < ihi; i++ {
		ri := a.RowView(i)
		for j := i; j < a.Rows; j++ {
			v := blas.Dot(ri, a.RowView(j))
			g.Data[i*g.Stride+j] = v
			g.Data[j*g.Stride+i] = v
		}
	}
}

// ParGramT computes AAᵀ like GramT with output rows sharded across the
// worker pool.  Each element is a single dot product, so the result is
// bitwise identical to GramT for any workers.
func ParGramT(workers int, a *Dense) *Dense {
	m := a.Rows
	g := NewDense(m, m)
	if workers == 1 || m < 2 || m*m*a.Cols < parMinFlops {
		gramTRange(a, g, 0, m)
		return g
	}
	pool.Do(workers, m, func(lo, hi int) {
		gramTRange(a, g, lo, hi)
	})
	return g
}
