package cluster

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/graph"
	"srda/internal/mat"
)

func blobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = 0.3 * rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
	}
	return x, labels
}

// clusterAgreement computes the best-case accuracy of a clustering
// against ground truth by majority-label mapping.
func clusterAgreement(assign, truth []int, k, c int) float64 {
	votes := make([][]int, k)
	for i := range votes {
		votes[i] = make([]int, c)
	}
	for i := range assign {
		votes[assign[i]][truth[i]]++
	}
	correct := 0
	for _, v := range votes {
		best := 0
		for _, cnt := range v {
			if cnt > best {
				best = cnt
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, truth := blobs(rng, 90, 4, 3, 10)
	res, err := KMeans(x, 3, KMeansOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if agr := clusterAgreement(res.Assign, truth, 3, 3); agr < 0.98 {
		t.Fatalf("agreement %.3f on separated blobs", agr)
	}
	if res.Inertia <= 0 {
		t.Fatalf("inertia %v", res.Inertia)
	}
}

func TestKMeansAssignmentsConsistentWithCenters(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, _ := blobs(rng, 60, 5, 3, 6)
	res, err := KMeans(x, 3, KMeansOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		own := sqDist(x.RowView(i), res.Centers.RowView(res.Assign[i]))
		for c := 0; c < 3; c++ {
			if sqDist(x.RowView(i), res.Centers.RowView(c)) < own-1e-9 {
				t.Fatalf("sample %d not assigned to nearest center", i)
			}
		}
	}
}

func TestKMeansHandlesKEqualsM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, _ := blobs(rng, 8, 3, 2, 5)
	res, err := KMeans(x, 8, KMeansOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=m inertia %v should be ~0", res.Inertia)
	}
}

func TestKMeansValidation(t *testing.T) {
	x := mat.NewDense(5, 2)
	if _, err := KMeans(x, 0, KMeansOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(x, 6, KMeansOptions{}); err == nil {
		t.Fatal("k>m accepted")
	}
}

func TestKMeansDeterministicBySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, _ := blobs(rng, 40, 4, 3, 6)
	r1, err := KMeans(x, 3, KMeansOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := KMeans(x, 3, KMeansOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
}

func TestSpectralClusteringOnRings(t *testing.T) {
	// Two concentric rings: k-means in input space fails, spectral
	// clustering on the k-NN graph succeeds — the canonical demo.
	rng := rand.New(rand.NewSource(5))
	m := 160
	x := mat.NewDense(m, 2)
	truth := make([]int, m)
	for i := 0; i < m; i++ {
		truth[i] = i % 2
		r := 1.0
		if truth[i] == 1 {
			r = 4
		}
		r += 0.1 * rng.NormFloat64()
		theta := 2 * math.Pi * rng.Float64()
		x.Set(i, 0, r*math.Cos(theta))
		x.Set(i, 1, r*math.Sin(theta))
	}
	g := graph.KNN(x, graph.KNNOptions{K: 8})
	spec, err := Spectral(g, 2, SpectralOptions{Seed: 6, KMeans: KMeansOptions{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	if agr := clusterAgreement(spec.Assign, truth, 2, 2); agr < 0.95 {
		t.Fatalf("spectral agreement %.3f on rings", agr)
	}
	flat, err := KMeans(x, 2, KMeansOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if agr := clusterAgreement(flat.Assign, truth, 2, 2); agr > 0.8 {
		t.Fatalf("plain k-means should fail on rings, got %.3f", agr)
	}
}

func TestSpectralValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, _ := blobs(rng, 12, 3, 2, 5)
	g := graph.KNN(x, graph.KNNOptions{K: 3})
	if _, err := Spectral(g, 1, SpectralOptions{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Spectral(g, 100, SpectralOptions{}); err == nil {
		t.Fatal("k>m accepted")
	}
}
