// Package cluster implements k-means and spectral clustering on top of
// the repository's graph and eigensolver substrate.  Spectral clustering
// is the unsupervised sibling of the paper's framework: where SRDA reads
// the *class* graph's eigenvectors in closed form, clustering takes a
// *neighborhood* graph, embeds it through the same normalized-adjacency
// eigenproblem (deflated Lanczos), and quantizes the embedding with
// k-means — the standard normalized-cuts pipeline.
package cluster

import (
	"fmt"
	"math"
	"math/rand"

	"srda/internal/blas"
	"srda/internal/graph"
	"srda/internal/mat"
	"srda/internal/solver"
)

// KMeansOptions configures Lloyd's algorithm.
type KMeansOptions struct {
	// MaxIter caps Lloyd iterations (default 100).
	MaxIter int
	// Restarts runs the algorithm from multiple k-means++ seedings and
	// keeps the lowest-inertia result (default 5).
	Restarts int
	// Seed fixes the seeding RNG.
	Seed int64
}

// KMeansResult holds a clustering.
type KMeansResult struct {
	// Assign maps each row to its cluster in [0, k).
	Assign []int
	// Centers is k×d.
	Centers *mat.Dense
	// Inertia is the summed squared distance to assigned centers.
	Inertia float64
	// Iters counts Lloyd iterations of the winning restart.
	Iters int
}

// KMeans clusters the rows of x into k groups with k-means++ seeding and
// Lloyd iterations.
func KMeans(x *mat.Dense, k int, opt KMeansOptions) (*KMeansResult, error) {
	m, d := x.Rows, x.Cols
	if k < 1 || k > m {
		return nil, fmt.Errorf("cluster: k=%d outside [1, %d]", k, m)
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 100
	}
	if opt.Restarts <= 0 {
		opt.Restarts = 5
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	var best *KMeansResult
	for restart := 0; restart < opt.Restarts; restart++ {
		res := kmeansOnce(x, k, opt.MaxIter, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	_ = d
	return best, nil
}

// kmeansOnce runs one seeded Lloyd descent.
func kmeansOnce(x *mat.Dense, k, maxIter int, rng *rand.Rand) *KMeansResult {
	m, d := x.Rows, x.Cols
	centers := mat.NewDense(k, d)

	// k-means++ seeding.
	first := rng.Intn(m)
	copy(centers.RowView(0), x.RowView(first))
	minD := make([]float64, m)
	for i := range minD {
		minD[i] = sqDist(x.RowView(i), centers.RowView(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, v := range minD {
			total += v
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(m)
		} else {
			u := rng.Float64() * total
			for i, v := range minD {
				u -= v
				if u <= 0 {
					pick = i
					break
				}
			}
		}
		copy(centers.RowView(c), x.RowView(pick))
		for i := range minD {
			if dd := sqDist(x.RowView(i), centers.RowView(c)); dd < minD[i] {
				minD[i] = dd
			}
		}
	}

	assign := make([]int, m)
	counts := make([]float64, k)
	iters := 0
	for iter := 0; iter < maxIter; iter++ {
		iters = iter + 1
		changed := false
		for i := 0; i < m; i++ {
			bestC, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				if dd := sqDist(x.RowView(i), centers.RowView(c)); dd < bestD {
					bestC, bestD = c, dd
				}
			}
			if assign[i] != bestC {
				assign[i] = bestC
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// recompute centers; re-seed empty clusters at the farthest point
		centers.Zero()
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < m; i++ {
			counts[assign[i]]++
			blas.Axpy(1, x.RowView(i), centers.RowView(assign[i]))
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 { //srdalint:ignore floatcmp counts hold exact integer increments; zero means an empty cluster
				far, farD := 0, -1.0
				for i := 0; i < m; i++ {
					if dd := sqDist(x.RowView(i), centers.RowView(assign[i])); dd > farD {
						far, farD = i, dd
					}
				}
				copy(centers.RowView(c), x.RowView(far))
				continue
			}
			blas.Scal(1/counts[c], centers.RowView(c))
		}
	}
	var inertia float64
	for i := 0; i < m; i++ {
		inertia += sqDist(x.RowView(i), centers.RowView(assign[i]))
	}
	return &KMeansResult{Assign: assign, Centers: centers, Inertia: inertia, Iters: iters}
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SpectralOptions configures spectral clustering.
type SpectralOptions struct {
	// KMeans configures the quantization stage.
	KMeans KMeansOptions
	// EigTol is the Lanczos tolerance (default 1e-8).
	EigTol float64
	// Seed fixes the eigensolver start vectors.
	Seed int64
}

// Spectral clusters the graph's vertices into k groups by the
// normalized-cuts pipeline: top-k eigenvectors of D^{-1/2}WD^{-1/2}
// (deflated Lanczos, so disconnected components' repeated eigenvalue 1 is
// handled), rows renormalized to the unit sphere (Ng–Jordan–Weiss), then
// k-means.
func Spectral(g *graph.Graph, k int, opt SpectralOptions) (*KMeansResult, error) {
	if k < 2 {
		return nil, fmt.Errorf("cluster: spectral clustering needs k >= 2")
	}
	if k > g.Size() {
		return nil, fmt.Errorf("cluster: k=%d exceeds %d vertices", k, g.Size())
	}
	tol := opt.EigTol
	if tol <= 0 {
		tol = 1e-8
	}
	res, err := solver.LanczosDeflated(g.Normalized(), k, tol, opt.Seed+13)
	if err != nil {
		return nil, fmt.Errorf("cluster: spectral embedding: %w", err)
	}
	emb := res.Vectors.Clone()
	// row-normalize (NJW step); zero rows (isolated vertices) stay zero.
	for i := 0; i < emb.Rows; i++ {
		row := emb.RowView(i)
		if nrm := blas.Nrm2(row); nrm > 0 {
			blas.Scal(1/nrm, row)
		}
	}
	return KMeans(emb, k, opt.KMeans)
}
