// Package core implements Spectral Regression Discriminant Analysis
// (SRDA), the paper's contribution: LDA training reduced to c−1 ridge
// regressions against closed-form graph-spectral responses.
//
// The algorithm (paper §III-B):
//
//  1. Responses generation — the class-block graph matrix W has the c
//     class indicator vectors as eigenvectors with eigenvalue 1
//     (eq. 15).  Taking the all-ones vector first and Gram–Schmidt
//     orthogonalizing yields c−1 response vectors ȳ_k that are orthogonal
//     to each other and to 1 (eq. 16).
//  2. Regularized least squares — for each ȳ_k solve
//     a_k = argmin Σᵢ (aᵀxᵢ + b − ȳ_k(i))² + α‖a‖² (eq. 19), by normal
//     equations (eq. 20), the dual/pseudo-inverse form (eq. 21), or LSQR.
//
// The fitted directions embed samples into the (c−1)-dimensional
// discriminant subspace; by Theorem 2 / Corollary 3 they coincide with
// LDA's as α→0 when the training samples are linearly independent.
package core

import (
	"fmt"
	"math"

	"srda/internal/mat"
)

// classStats counts samples per class and validates labels.
func classStats(labels []int, numClasses int) ([]int, error) {
	if numClasses < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes, got %d", numClasses)
	}
	counts := make([]int, numClasses)
	for i, y := range labels {
		if y < 0 || y >= numClasses {
			return nil, fmt.Errorf("core: label %d at sample %d out of range [0,%d)", y, i, numClasses)
		}
		counts[y]++
	}
	for k, c := range counts {
		if c == 0 {
			return nil, fmt.Errorf("core: class %d has no samples", k)
		}
	}
	return counts, nil
}

// ResponseTable holds the per-class response values: response k assigns
// Values[class][k] to every sample of that class.  Because the paper's
// eigenvectors (eq. 15) are constant within each class, this c×(c−1)
// table is the whole structure; the m×(c−1) response matrix is just a
// row-gather of it.
type ResponseTable struct {
	Values *mat.Dense // c×(c−1)
	Counts []int      // samples per class
}

// GenerateResponses runs the paper's responses-generation step.  It
// performs the Gram–Schmidt orthogonalization of
// [1, indicator_1, ..., indicator_c] analytically in the c-dimensional
// quotient space: since every candidate vector is constant on classes,
// the inner product of two such vectors is Σ_k counts[k]·u_k·v_k, so the
// whole step costs O(c³) instead of O(m·c²), independent of the sample
// count.  The ones vector is taken first and dropped, leaving exactly c−1
// orthonormal responses that sum to zero over the samples (eq. 16).
func GenerateResponses(labels []int, numClasses int) (*ResponseTable, error) {
	counts, err := classStats(labels, numClasses)
	if err != nil {
		return nil, err
	}
	return ResponsesFromCounts(counts)
}

// ResponsesFromCounts runs the same responses generation directly from
// per-class sample counts — the only quantity the weighted Gram–Schmidt
// actually consumes.  Callers that never materialize labels (the
// incremental trainer) use this entry point.
func ResponsesFromCounts(counts []int) (*ResponseTable, error) {
	c := len(counts)
	if c < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes, got %d", c)
	}
	for k, cnt := range counts {
		if cnt <= 0 {
			return nil, fmt.Errorf("core: class %d has no samples", k)
		}
	}
	// Candidate vectors in per-class representation: column 0 is the ones
	// vector (value 1 for every class), column k+1 is indicator of class k.
	cand := mat.NewDense(c, c+1)
	for k := 0; k < c; k++ {
		cand.Set(k, 0, 1)
		cand.Set(k, k+1, 1)
	}
	w := make([]float64, c)
	for k := range w {
		w[k] = float64(counts[k])
	}
	dotW := func(u, v []float64) float64 {
		var s float64
		for k := 0; k < c; k++ {
			s += w[k] * u[k] * v[k]
		}
		return s
	}
	// Weighted modified Gram–Schmidt with reorthogonalization.
	cols := make([][]float64, 0, c+1)
	ucol := make([]float64, c)
	for j := 0; j < c+1; j++ {
		cand.ColCopy(j, ucol)
		u := append([]float64(nil), ucol...)
		orig := math.Sqrt(dotW(u, u))
		for pass := 0; pass < 2; pass++ {
			for _, q := range cols {
				d := dotW(q, u)
				if d == 0 { //srdalint:ignore floatcmp exact zero projection contributes nothing; skip is bit-exact
					continue
				}
				for k := 0; k < c; k++ {
					u[k] -= d * q[k]
				}
			}
		}
		nrm := math.Sqrt(dotW(u, u))
		if orig == 0 || nrm <= 1e-10*orig { //srdalint:ignore floatcmp exact zero norm marks the dependent indicator column
			continue // dependent (exactly one indicator is, given 1)
		}
		inv := 1 / nrm
		for k := 0; k < c; k++ {
			u[k] *= inv
		}
		cols = append(cols, u)
	}
	if len(cols) != c {
		return nil, fmt.Errorf("core: responses generation kept %d vectors, want %d", len(cols), c)
	}
	// Drop the ones vector (cols[0]); the rest are the responses.
	values := mat.NewDense(c, c-1)
	for j := 1; j < c; j++ {
		values.SetCol(j-1, cols[j])
	}
	return &ResponseTable{Values: values, Counts: counts}, nil
}

// Materialize expands the table into the m×(c−1) response matrix for the
// given label sequence.
func (rt *ResponseTable) Materialize(labels []int) *mat.Dense {
	m := len(labels)
	k := rt.Values.Cols
	y := mat.NewDense(m, k)
	for i, lab := range labels {
		copy(y.RowView(i), rt.Values.RowView(lab))
	}
	return y
}

// NumResponses returns c−1.
func (rt *ResponseTable) NumResponses() int { return rt.Values.Cols }
