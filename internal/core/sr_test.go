package core

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/graph"
	"srda/internal/mat"
)

func TestSRWithClassGraphMatchesSRDAGeometry(t *testing.T) {
	// With the supervised class graph and Dim = c−1, generalized SR must
	// span the same subspace as SRDA: embeddings agree up to an orthogonal
	// transform, so pairwise distances match.
	rng := rand.New(rand.NewSource(1))
	x, labels := gaussianBlobs(rng, 90, 12, 3, 6)
	g, err := graph.ClassGraph(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := FitSRDense(x, g, SROptions{Dim: 2, Alpha: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srda, err := FitDense(x, labels, 3, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := sr.TransformDense(x), srda.TransformDense(x)
	if e1.Cols != 2 || e2.Cols != 2 {
		t.Fatalf("dims %d / %d", e1.Cols, e2.Cols)
	}
	for trial := 0; trial < 40; trial++ {
		i, p := rng.Intn(x.Rows), rng.Intn(x.Rows)
		d1 := rowDist(e1, i, p)
		d2 := rowDist(e2, i, p)
		if math.Abs(d1-d2) > 1e-4*(1+d1) {
			t.Fatalf("distance mismatch (%d,%d): %v vs %v", i, p, d1, d2)
		}
	}
}

func rowDist(e *mat.Dense, i, p int) float64 {
	var d float64
	for j := 0; j < e.Cols; j++ {
		diff := e.At(i, j) - e.At(p, j)
		d += diff * diff
	}
	return math.Sqrt(d)
}

func TestSRUnsupervisedKNNSeparatesBlobs(t *testing.T) {
	// On well-separated blobs, the unsupervised spectral embedding (k-NN
	// graph, no labels at all) must still land same-cluster points close
	// together: within-cluster distances well below cross-cluster ones.
	rng := rand.New(rand.NewSource(2))
	x, labels := gaussianBlobs(rng, 90, 8, 3, 12)
	g := graph.KNN(x, graph.KNNOptions{K: 6})
	model, err := FitSRDense(x, g, SROptions{Dim: 2, Alpha: 0.1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformDense(x)
	var within, cross float64
	var nw, nc int
	for i := 0; i < x.Rows; i++ {
		for p := 0; p < i; p++ {
			d := rowDist(emb, i, p)
			if labels[i] == labels[p] {
				within += d
				nw++
			} else {
				cross += d
				nc++
			}
		}
	}
	if within/float64(nw) >= 0.5*cross/float64(nc) {
		t.Fatalf("unsupervised SR did not separate clusters: within %.4f vs cross %.4f",
			within/float64(nw), cross/float64(nc))
	}
}

func TestSRSemiSupervisedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, labels := gaussianBlobs(rng, 80, 10, 4, 8)
	partial := append([]int(nil), labels...)
	for i := range partial {
		if i%2 == 1 {
			partial[i] = -1
		}
	}
	g, err := graph.SemiSupervised(x, partial, 4, 1, graph.KNNOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	model, err := FitSRDense(x, g, SROptions{Dim: 3, Alpha: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformDense(x)
	// labeled samples must classify correctly by nearest centroid using
	// only the labeled half
	var labIdx []int
	for i, y := range partial {
		if y >= 0 {
			labIdx = append(labIdx, i)
		}
	}
	errs := 0
	for _, i := range labIdx {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < 4; k++ {
			// centroid of labeled class k
			cnt := 0.0
			cent := make([]float64, emb.Cols)
			for _, p := range labIdx {
				if partial[p] == k {
					cnt++
					for j := range cent {
						cent[j] += emb.At(p, j)
					}
				}
			}
			var d float64
			for j := range cent {
				diff := emb.At(i, j) - cent[j]/cnt
				d += diff * diff
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		if best != labels[i] {
			errs++
		}
	}
	if frac := float64(errs) / float64(len(labIdx)); frac > 0.1 {
		t.Fatalf("semi-supervised SR training error %.2f", frac)
	}
}

func TestSRValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := gaussianBlobs(rng, 30, 5, 3, 5)
	g, err := graph.ClassGraph(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FitSRDense(x, g, SROptions{Dim: 0}); err == nil {
		t.Fatal("Dim 0 accepted")
	}
	if _, err := FitSRDense(x, g, SROptions{Dim: 40}); err == nil {
		t.Fatal("oversized Dim accepted")
	}
	small := mat.NewDense(10, 5)
	if _, err := FitSRDense(small, g, SROptions{Dim: 2}); err == nil {
		t.Fatal("graph/data size mismatch accepted")
	}
}
