package core

import (
	"math/rand"
	"path/filepath"
	"testing"

	"srda/internal/mat"
	"srda/internal/sparse"
)

// fitBlobModel trains a centroided model on separable blobs, returning the
// model plus a held-out batch from the same distribution.
func fitBlobModel(t *testing.T, m, n, c int, seed int64) (*Model, *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x, labels := gaussianBlobs(rng, m, n, c, 6)
	model, err := FitDense(x, labels, c, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	batch, _ := gaussianBlobs(rng, 64, n, c, 6)
	return model, batch
}

func toCSR(x *mat.Dense) *sparse.CSR {
	b := sparse.NewBuilder(x.Rows, x.Cols)
	for i := 0; i < x.Rows; i++ {
		for j, v := range x.RowView(i) {
			if v != 0 {
				b.Add(i, j, v)
			}
		}
	}
	return b.Build()
}

func TestProjectBatchMatchesTransformDense(t *testing.T) {
	model, batch := fitBlobModel(t, 150, 40, 5, 21)
	want := model.TransformDense(batch)
	got := model.ProjectBatch(batch, nil)
	if !mat.Equalish(want, got, 1e-12) {
		t.Fatalf("ProjectBatch diverges from TransformDense by %g", mat.MaxAbsDiff(want, got))
	}
	// Reusing a destination buffer must not change the result.
	dst := mat.NewDense(batch.Rows, model.Dim())
	for i := range dst.Data {
		dst.Data[i] = 999 // stale garbage that must be overwritten
	}
	got2 := model.ProjectBatch(batch, dst)
	if got2 != dst {
		t.Fatal("ProjectBatch did not reuse the provided destination")
	}
	if !mat.Equalish(want, got2, 1e-12) {
		t.Fatalf("ProjectBatch with reused dst diverges by %g", mat.MaxAbsDiff(want, got2))
	}
}

func TestProjectBatchCSRMatchesTransformSparse(t *testing.T) {
	model, batch := fitBlobModel(t, 150, 40, 5, 22)
	sp := toCSR(batch)
	want := model.TransformSparse(sp)
	got := model.ProjectBatchCSR(sp, nil)
	if !mat.Equalish(want, got, 1e-12) {
		t.Fatalf("ProjectBatchCSR diverges from TransformSparse by %g", mat.MaxAbsDiff(want, got))
	}
	dst := mat.NewDense(sp.Rows, model.Dim())
	for i := range dst.Data {
		dst.Data[i] = -123
	}
	got2 := model.ProjectBatchCSR(sp, dst)
	if got2 != dst || !mat.Equalish(want, got2, 1e-12) {
		t.Fatal("ProjectBatchCSR with reused dst diverges")
	}
}

func TestPredictBatchMatchesPredictDense(t *testing.T) {
	for _, c := range []int{2, 5} { // c=2 exercises the 1-dimensional embedding
		model, batch := fitBlobModel(t, 120, 30, c, int64(30+c))
		want := model.PredictDense(batch)
		got := model.PredictBatch(batch)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("c=%d: PredictBatch[%d]=%d, PredictDense=%d", c, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchCSRMatchesPredictSparse(t *testing.T) {
	for _, c := range []int{2, 6} {
		model, batch := fitBlobModel(t, 120, 30, c, int64(40+c))
		sp := toCSR(batch)
		want := model.PredictSparse(sp)
		got := model.PredictBatchCSR(sp)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("c=%d: PredictBatchCSR[%d]=%d, PredictSparse=%d", c, i, got[i], want[i])
			}
		}
	}
}

func TestPredictBatchEmptyAndPanics(t *testing.T) {
	model, _ := fitBlobModel(t, 100, 20, 3, 50)
	if got := model.PredictBatch(mat.NewDense(0, 20)); len(got) != 0 {
		t.Fatalf("empty batch produced %d predictions", len(got))
	}
	model.Centroids = nil
	defer func() {
		if recover() == nil {
			t.Fatal("PredictBatch without centroids did not panic")
		}
	}()
	model.PredictBatch(mat.NewDense(1, 20))
}

func TestSaveFileLoadFileRoundTrip(t *testing.T) {
	model, batch := fitBlobModel(t, 100, 20, 4, 60)
	path := filepath.Join(t.TempDir(), "sub", "..", "m.bin") // normal dir path
	path = filepath.Clean(path)
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(model.W, loaded.W, 0) || !mat.Equalish(model.Centroids, loaded.Centroids, 0) {
		t.Fatal("round trip changed the model")
	}
	want := model.PredictBatch(batch)
	got := loaded.PredictBatch(batch)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("round-tripped model predicts differently")
		}
	}
	// Overwriting an existing file must also succeed (rename over target).
	if err := loaded.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.bin")); err == nil {
		t.Fatal("LoadFile on a missing path succeeded")
	}
}
