package core

import (
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync/atomic"

	"srda/internal/blas"
	"srda/internal/classify"
	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/pool"
	"srda/internal/regress"
	"srda/internal/solver"
	"srda/internal/sparse"
)

// Options configures SRDA training.
type Options struct {
	// Alpha is the ridge penalty α of eq. (14).  The paper uses α = 1 in
	// its experiments; 0 recovers plain least squares (and, by Corollary
	// 3, exact LDA when the samples are linearly independent).
	Alpha float64
	// Strategy selects the regression solver.  Auto matches the paper's
	// protocol: closed-form normal equations for dense data (primal or
	// dual by shape), LSQR for sparse data.
	Strategy regress.Strategy
	// LSQRIter caps LSQR iterations per response (default 30; the paper
	// sets 15 for 20Newsgroups).
	LSQRIter int
	// Workers bounds all parallelism in the fit: the independent
	// per-response solves on the LSQR path and the worker-pool sharding
	// inside every dense/sparse kernel (0 = GOMAXPROCS, 1 = sequential).
	// Every setting produces a bitwise-identical model; the trained
	// Model inherits the value for its batch-projection kernels.
	Workers int
	// Trace, when non-nil, receives per-phase timing spans for the fit:
	// "responses" for response generation plus the regress-layer phases
	// (see regress.Options.Trace).  Training itself never reads a clock;
	// timing lives entirely in the caller-provided trace.
	Trace *obs.Trace
}

// Model is a trained SRDA transformer: samples are embedded into the
// (c−1)-dimensional discriminant subspace by x ↦ Wᵀx + b.
type Model struct {
	// W is the n×(c−1) projection matrix.
	W *mat.Dense
	// B holds the c−1 intercepts (the paper's absorbed bias terms).
	B []float64
	// NumClasses is c.
	NumClasses int
	// Alpha records the penalty used at training time.
	Alpha float64
	// Iters is the total LSQR iteration count (0 for direct solves).
	Iters int
	// Strategy records which solver actually ran.
	Strategy regress.Strategy
	// Centroids optionally holds the embedded class means of the training
	// data (c×(c−1)), set by SetCentroids; with them the model is a
	// self-contained nearest-centroid classifier (see Predict).
	Centroids *mat.Dense

	// Workers bounds the worker-pool sharding of the batch projection
	// kernels (0 = GOMAXPROCS, 1 = sequential).  Purely a runtime knob —
	// outputs are bitwise identical at every setting — so it is not
	// serialized; loaded models default to 0.
	Workers int

	// Stats carries the solver telemetry of the fit (per-response LSQR
	// iteration counts and residual norms).  Advisory only: it never
	// affects predictions and, like Workers, is not serialized — loaded
	// models carry a zero Stats.
	Stats regress.Stats

	// wt lazily caches Wᵀ for the batched projection path (safe for
	// concurrent readers).  Code that mutates W in place after the first
	// batch call must invalidate it via InvalidateCache.
	wt atomic.Pointer[mat.Dense]
}

// projT returns a cached transposed copy of W, building it on first use.
// The transposed layout is what lets ProjectBatch run through the
// unit-stride dot-product GEMM kernel.
func (m *Model) projT() *mat.Dense {
	if wt := m.wt.Load(); wt != nil && wt.Rows == m.W.Cols && wt.Cols == m.W.Rows {
		return wt
	}
	wt := mat.NewDense(m.W.Cols, m.W.Rows)
	// j-outer order: reads walk W nearly sequentially, writes are
	// unit-stride — much kinder to the cache than a row-outer transpose.
	for j := 0; j < m.W.Cols; j++ {
		row := wt.RowView(j)
		for i := 0; i < m.W.Rows; i++ {
			row[i] = m.W.Data[i*m.W.Stride+j]
		}
	}
	m.wt.Store(wt)
	return wt
}

// InvalidateCache drops derived caches; call it after mutating W in
// place.  (Replacing the whole Model, the serving layer's hot-reload
// unit, never needs this.)
func (m *Model) InvalidateCache() { m.wt.Store(nil) }

// SetCentroids computes and stores the embedded class means from a
// training embedding, turning the model into a standalone classifier.
func (m *Model) SetCentroids(emb *mat.Dense, labels []int) error {
	if emb.Rows != len(labels) {
		return fmt.Errorf("core: %d embedded rows but %d labels", emb.Rows, len(labels))
	}
	if emb.Cols != m.Dim() {
		return fmt.Errorf("core: embedding has %d dims, model %d", emb.Cols, m.Dim())
	}
	cent := mat.NewDense(m.NumClasses, m.Dim())
	counts := make([]float64, m.NumClasses)
	for i, y := range labels {
		if y < 0 || y >= m.NumClasses {
			return fmt.Errorf("core: label %d out of range", y)
		}
		counts[y]++
		row := emb.RowView(i)
		crow := cent.RowView(y)
		for j := range row {
			crow[j] += row[j]
		}
	}
	for k := 0; k < m.NumClasses; k++ {
		if counts[k] == 0 { //srdalint:ignore floatcmp counts hold exact integer increments; zero means an empty class
			return fmt.Errorf("core: class %d has no samples", k)
		}
		crow := cent.RowView(k)
		for j := range crow {
			crow[j] /= counts[k]
		}
	}
	m.Centroids = cent
	return nil
}

// PredictVec classifies one raw sample by nearest stored centroid in the
// embedded space; it panics when SetCentroids has not been called.
func (m *Model) PredictVec(x []float64) int {
	if m.Centroids == nil {
		panic("core: PredictVec requires SetCentroids")
	}
	emb := m.TransformVec(x, nil)
	return m.nearest(emb)
}

// PredictDense classifies each row of x by nearest stored centroid.
func (m *Model) PredictDense(x *mat.Dense) []int {
	if m.Centroids == nil {
		panic("core: PredictDense requires SetCentroids")
	}
	emb := m.TransformDense(x)
	out := make([]int, emb.Rows)
	for i := range out {
		out[i] = m.nearest(emb.RowView(i))
	}
	return out
}

// PredictSparse classifies each CSR row by nearest stored centroid.
func (m *Model) PredictSparse(x *sparse.CSR) []int {
	if m.Centroids == nil {
		panic("core: PredictSparse requires SetCentroids")
	}
	emb := m.TransformSparse(x)
	out := make([]int, emb.Rows)
	for i := range out {
		out[i] = m.nearest(emb.RowView(i))
	}
	return out
}

// PredictBatch classifies every row of x in one shot: the projection is a
// single GEMM (ProjectBatch) and the nearest-centroid assignment is a
// second GEMM against the centroid matrix, so per-sample dispatch overhead
// is fully amortized.  It matches PredictDense up to floating-point
// tie-breaking and is the path the serving layer's micro-batcher runs.
func (m *Model) PredictBatch(x *mat.Dense) []int {
	return m.PredictBatchCtx(context.Background(), x)
}

// PredictBatchCtx is PredictBatch under request-scoped tracing: when ctx
// carries an active span (obs.StartSpan), the projection GEMM and the
// centroid assignment are recorded as its "core.gemm" and
// "core.classify" children.  Cancellation is deliberately not consulted
// — a batch that has reached the kernels runs to completion.
func (m *Model) PredictBatchCtx(ctx context.Context, x *mat.Dense) []int {
	if m.Centroids == nil {
		panic("core: PredictBatch requires SetCentroids")
	}
	emb := m.ProjectBatchCtx(ctx, x, nil)
	_, sp := obs.StartSpan(ctx, "core.classify")
	out := m.classifyBatch(emb)
	sp.End()
	return out
}

// PredictBatchCSR classifies every CSR row with the batched
// nearest-centroid assignment; the projection stays O(nnz).
func (m *Model) PredictBatchCSR(x *sparse.CSR) []int {
	return m.PredictBatchCSRCtx(context.Background(), x)
}

// PredictBatchCSRCtx is PredictBatchCSR under request-scoped tracing,
// with "core.project_csr" and "core.classify" child spans.
func (m *Model) PredictBatchCSRCtx(ctx context.Context, x *sparse.CSR) []int {
	if m.Centroids == nil {
		panic("core: PredictBatchCSR requires SetCentroids")
	}
	emb := m.ProjectBatchCSRCtx(ctx, x, nil)
	_, sp := obs.StartSpan(ctx, "core.classify")
	out := m.classifyBatch(emb)
	sp.End()
	return out
}

func (m *Model) classifyBatch(emb *mat.Dense) []int {
	nc := classify.NearestCentroid{Centroids: m.Centroids}
	return nc.PredictBatch(emb)
}

func (m *Model) nearest(v []float64) int {
	best, bestD := -1, math.Inf(1)
	for k := 0; k < m.Centroids.Rows; k++ {
		crow := m.Centroids.RowView(k)
		var d float64
		for j := range v {
			diff := v[j] - crow[j]
			d += diff * diff
		}
		if d < bestD {
			best, bestD = k, d
		}
	}
	return best
}

// FitDense trains SRDA on a dense m×n design matrix with labels in
// [0, numClasses).
//
// Fits that resolve to the Primal strategy run through the
// sufficient-statistics bridge (FitStats): the Gram matrix via
// mat.ParGram, X̃ᵀY collapsed to classSumsᵀ·V, and stats-based class
// centroids — bitwise identical to a streaming pass over the same rows,
// which is the online trainer's equivalence contract.  Dual and LSQR
// fits keep the regress-layer path (and, like before, carry no
// centroids until SetCentroids).
func FitDense(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	if x.Rows != len(labels) {
		return nil, fmt.Errorf("core: %d samples but %d labels", x.Rows, len(labels))
	}
	// Mirror regress.FitDense's Auto resolution so the two layers always
	// agree on which solver a given shape gets.
	strat := opt.Strategy
	if strat == regress.Auto {
		if x.Cols > x.Rows {
			strat = regress.Dual
		} else {
			strat = regress.Primal
		}
	}
	if strat == regress.Primal {
		if opt.Alpha < 0 {
			return nil, fmt.Errorf("regress: negative alpha %v", opt.Alpha)
		}
		return fitDensePrimalStats(x, labels, numClasses, opt)
	}
	sp := opt.Trace.Start("responses")
	rt, err := GenerateResponses(labels, numClasses)
	if err != nil {
		sp.End()
		return nil, err
	}
	y := rt.Materialize(labels)
	sp.End()
	rm, err := regress.FitDense(x, y, regress.Options{
		Alpha:     opt.Alpha,
		Strategy:  opt.Strategy,
		Intercept: true,
		LSQRIter:  opt.LSQRIter,
		Workers:   opt.Workers,
		Trace:     opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	return fromRegress(rm, numClasses, opt), nil
}

// FitSparse trains SRDA on a CSR design matrix using the linear-time LSQR
// path with the intercept-absorption trick, never densifying the data.
func FitSparse(x *sparse.CSR, labels []int, numClasses int, opt Options) (*Model, error) {
	return FitOperator(solver.SparseOp{A: x, Workers: opt.Workers}, labels, numClasses, opt)
}

// FitOperator trains SRDA through an abstract operator (LSQR only); this
// is the fully matrix-free path that even supports out-of-core operators.
func FitOperator(op solver.Operator, labels []int, numClasses int, opt Options) (*Model, error) {
	m, _ := op.Dims()
	if m != len(labels) {
		return nil, fmt.Errorf("core: %d samples but %d labels", m, len(labels))
	}
	sp := opt.Trace.Start("responses")
	rt, err := GenerateResponses(labels, numClasses)
	if err != nil {
		sp.End()
		return nil, err
	}
	y := rt.Materialize(labels)
	sp.End()
	rm, err := regress.FitOperator(op, y, regress.Options{
		Alpha:     opt.Alpha,
		Intercept: true,
		LSQRIter:  opt.LSQRIter,
		Workers:   opt.Workers,
		Trace:     opt.Trace,
	})
	if err != nil {
		return nil, err
	}
	return fromRegress(rm, numClasses, opt), nil
}

func fromRegress(rm *regress.Model, numClasses int, opt Options) *Model {
	return &Model{
		W:          rm.W,
		B:          rm.B,
		NumClasses: numClasses,
		Alpha:      opt.Alpha,
		Iters:      rm.Iters,
		Strategy:   rm.Strategy,
		Workers:    opt.Workers,
		Stats:      rm.Stats,
	}
}

// Dim returns the embedding dimensionality c−1.
func (m *Model) Dim() int { return m.W.Cols }

// TransformDense embeds the rows of x into the discriminant subspace.
func (m *Model) TransformDense(x *mat.Dense) *mat.Dense {
	if x.Cols != m.W.Rows {
		panic(fmt.Sprintf("core: TransformDense feature mismatch: data has %d, model %d", x.Cols, m.W.Rows))
	}
	out := mat.ParMul(m.Workers, x, m.W)
	m.addBias(out)
	return out
}

// TransformSparse embeds CSR rows without densifying them.  Output rows
// are independent, so they are sharded across the worker pool with the
// usual bitwise-identity guarantee.
func (m *Model) TransformSparse(x *sparse.CSR) *mat.Dense {
	if x.Cols != m.W.Rows {
		panic(fmt.Sprintf("core: TransformSparse feature mismatch: data has %d, model %d", x.Cols, m.W.Rows))
	}
	out := mat.NewDense(x.Rows, m.Dim())
	m.shardRows(x, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := out.RowView(i)
			cols, vals := x.Row(i)
			for t, j := range cols {
				wrow := m.W.RowView(j)
				v := vals[t]
				for d := range row {
					row[d] += v * wrow[d]
				}
			}
			for d := range row {
				row[d] += m.B[d]
			}
		}
	})
	return out
}

// projMinWork is the nnz·(c−1) volume below which the sparse projection
// paths skip the worker pool, matching the kernel thresholds elsewhere.
const projMinWork = 1 << 14

// shardRows runs fn over the row range of x, parallel when the volume
// justifies it.
func (m *Model) shardRows(x *sparse.CSR, fn func(lo, hi int)) {
	m.shardRowsCtx(context.Background(), x, fn)
}

// shardRowsCtx is shardRows threading a tracing context into the pool,
// so a traced request records the "pool.do" dispatch span.
func (m *Model) shardRowsCtx(ctx context.Context, x *sparse.CSR, fn func(lo, hi int)) {
	if m.Workers == 1 || x.Rows < 2 || x.NNZ()*m.Dim() < projMinWork {
		fn(0, x.Rows)
		return
	}
	pool.DoCtx(ctx, m.Workers, x.Rows, fn)
}

// ProjectBatch embeds the rows of x with one GEMM into dst, which is
// allocated (or reallocated on shape mismatch) when unsuitable and
// returned.  Passing a dst lets hot loops — the serving dispatcher in
// particular — reuse one output buffer across batches instead of
// allocating per call.
//
// W is tall and skinny (n×(c−1) with c−1 small), so the product is
// computed as X·(Wᵀ)ᵀ through the dot-product GEMM kernel: the c−1 rows
// of Wᵀ stay cache-resident across the whole batch and every inner loop
// is a unit-stride length-n dot, where the per-row GemvT path re-streams
// all of W per sample through (c−1)-wide strided updates.  That is the
// lowering that makes batching ≥2× faster than per-row prediction.
func (m *Model) ProjectBatch(x *mat.Dense, dst *mat.Dense) *mat.Dense {
	return m.ProjectBatchCtx(context.Background(), x, dst)
}

// ProjectBatchCtx is ProjectBatch recording the GEMM as a "core.gemm"
// child span when ctx carries one (obs.StartSpan); the numerics are
// identical.
func (m *Model) ProjectBatchCtx(ctx context.Context, x *mat.Dense, dst *mat.Dense) *mat.Dense {
	if x.Cols != m.W.Rows {
		panic(fmt.Sprintf("core: ProjectBatch feature mismatch: data has %d, model %d", x.Cols, m.W.Rows))
	}
	dst = m.batchDst(x.Rows, dst)
	wt := m.projT()
	_, sp := obs.StartSpan(ctx, "core.gemm")
	blas.ParGemmTB(m.Workers, x.Rows, m.Dim(), x.Cols, 1, x.Data, x.Stride, wt.Data, wt.Stride, 0, dst.Data, dst.Stride)
	m.addBias(dst)
	sp.End()
	return dst
}

// ProjectBatchCSR embeds CSR rows into dst (reused like ProjectBatch)
// without densifying them; cost stays O(nnz · (c−1)).
func (m *Model) ProjectBatchCSR(x *sparse.CSR, dst *mat.Dense) *mat.Dense {
	return m.ProjectBatchCSRCtx(context.Background(), x, dst)
}

// ProjectBatchCSRCtx is ProjectBatchCSR under request-scoped tracing:
// the sparse projection records as a "core.project_csr" child span, and
// a pool dispatch below it as "pool.do".
func (m *Model) ProjectBatchCSRCtx(ctx context.Context, x *sparse.CSR, dst *mat.Dense) *mat.Dense {
	if x.Cols != m.W.Rows {
		panic(fmt.Sprintf("core: ProjectBatchCSR feature mismatch: data has %d, model %d", x.Cols, m.W.Rows))
	}
	dst = m.batchDst(x.Rows, dst)
	spCtx, sp := obs.StartSpan(ctx, "core.project_csr")
	m.shardRowsCtx(spCtx, x, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dst.RowView(i)
			copy(row, m.B)
			cols, vals := x.Row(i)
			for t, j := range cols {
				blas.Axpy(vals[t], m.W.RowView(j), row)
			}
		}
	})
	sp.End()
	return dst
}

func (m *Model) batchDst(rows int, dst *mat.Dense) *mat.Dense {
	if dst == nil || dst.Rows != rows || dst.Cols != m.Dim() {
		return mat.NewDense(rows, m.Dim())
	}
	return dst
}

// TransformVec embeds a single dense sample.
func (m *Model) TransformVec(x []float64, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, m.Dim())
	}
	m.W.MulTVec(x, dst)
	for d := range dst {
		dst[d] += m.B[d]
	}
	return dst
}

func (m *Model) addBias(out *mat.Dense) {
	for i := 0; i < out.Rows; i++ {
		row := out.RowView(i)
		for j := range row {
			row[j] += m.B[j]
		}
	}
}

// modelWire is the gob-encoded persistent form of a Model.
type modelWire struct {
	Rows, Cols int
	W          []float64
	B          []float64
	NumClasses int
	Alpha      float64
	Centroids  []float64 // c×Cols row-major, empty when unset
}

// Save serializes the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{
		Rows: m.W.Rows, Cols: m.W.Cols,
		W: m.W.Clone().Data, B: m.B,
		NumClasses: m.NumClasses, Alpha: m.Alpha,
	}
	if m.Centroids != nil {
		wire.Centroids = m.Centroids.Clone().Data
	}
	return gob.NewEncoder(w).Encode(wire)
}

// SaveFile atomically persists the model to path: the bytes are written
// to a temporary file in the same directory, synced, and renamed into
// place.  A crash mid-save therefore never leaves a truncated model where
// a reader — in particular srdaserve's hot-reload watcher — could pick it
// up.
func (m *Model) SaveFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpPath := tmp.Name()
	cleanup := func() {
		// Failure path: the write error is the one to report.
		_ = tmp.Close()
		_ = os.Remove(tmpPath)
	}
	if err := m.Save(tmp); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpPath) // failure path: the close error is the one to report
		return err
	}
	if err := os.Rename(tmpPath, path); err != nil {
		_ = os.Remove(tmpPath) // failure path: the rename error is the one to report
		return err
	}
	return nil
}

// LoadFile reads a model previously written by SaveFile (or Save).
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }() // read-only; nothing to flush
	return Load(f)
}

// Load deserializes a model written by Save.
func Load(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if len(wire.W) != wire.Rows*wire.Cols {
		return nil, fmt.Errorf("core: corrupt model: %d values for %dx%d", len(wire.W), wire.Rows, wire.Cols)
	}
	if len(wire.B) != wire.Cols {
		return nil, fmt.Errorf("core: corrupt model: %d biases for %d responses", len(wire.B), wire.Cols)
	}
	model := &Model{
		W:          mat.NewDenseData(wire.Rows, wire.Cols, wire.W),
		B:          wire.B,
		NumClasses: wire.NumClasses,
		Alpha:      wire.Alpha,
	}
	if len(wire.Centroids) > 0 {
		if len(wire.Centroids) != wire.NumClasses*wire.Cols {
			return nil, fmt.Errorf("core: corrupt model: %d centroid values for %dx%d", len(wire.Centroids), wire.NumClasses, wire.Cols)
		}
		model.Centroids = mat.NewDenseData(wire.NumClasses, wire.Cols, wire.Centroids)
	}
	return model, nil
}
