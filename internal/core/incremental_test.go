package core

import (
	"math/rand"
	"testing"

	"srda/internal/mat"
	"srda/internal/regress"
)

func TestIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, n, c := 70, 12, 3
	x, labels := gaussianBlobs(rng, m, n, c, 5)
	alpha := 0.8

	inc, err := NewIncremental(n, c, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if err := inc.Add(x.RowView(i), labels[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := inc.Model()
	if err != nil {
		t.Fatal(err)
	}
	want, err := FitDense(x, labels, c, Options{Alpha: alpha, Strategy: regress.Primal})
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(got.W, want.W); d > 1e-7 {
		t.Fatalf("incremental W differs from batch by %v", d)
	}
	for j := range got.B {
		if diff := got.B[j] - want.B[j]; diff > 1e-7 || diff < -1e-7 {
			t.Fatalf("bias %d differs: %v vs %v", j, got.B[j], want.B[j])
		}
	}
}

func TestIncrementalOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, c := 40, 8, 4
	x, labels := gaussianBlobs(rng, m, n, c, 4)

	fit := func(order []int) *Model {
		inc, err := NewIncremental(n, c, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, i := range order {
			if err := inc.Add(x.RowView(i), labels[i]); err != nil {
				t.Fatal(err)
			}
		}
		model, err := inc.Model()
		if err != nil {
			t.Fatal(err)
		}
		return model
	}
	fwd := make([]int, m)
	rev := make([]int, m)
	for i := range fwd {
		fwd[i] = i
		rev[i] = m - 1 - i
	}
	m1, m2 := fit(fwd), fit(rev)
	if d := mat.MaxAbsDiff(m1.W, m2.W); d > 1e-7 {
		t.Fatalf("order changes result by %v", d)
	}
}

func TestIncrementalStreamingRefits(t *testing.T) {
	// Model() must remain callable between additions, each time matching
	// the batch fit on the prefix.
	rng := rand.New(rand.NewSource(3))
	m, n, c := 36, 6, 3
	x, labels := gaussianBlobs(rng, m, n, c, 5)
	inc, err := NewIncremental(n, c, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		if err := inc.Add(x.RowView(i), labels[i]); err != nil {
			t.Fatal(err)
		}
		if inc.NumSeen() != i+1 {
			t.Fatalf("NumSeen %d after %d adds", inc.NumSeen(), i+1)
		}
		// refit once every 10 samples after all classes appear
		counts := inc.ClassCounts()
		ready := true
		for _, cnt := range counts {
			if cnt == 0 {
				ready = false
			}
		}
		if !ready || (i+1)%10 != 0 {
			continue
		}
		got, err := inc.Model()
		if err != nil {
			t.Fatal(err)
		}
		prefix := x.Slice(0, i+1, 0, n).Clone()
		want, err := FitDense(prefix, labels[:i+1], c, Options{Alpha: 1, Strategy: regress.Primal})
		if err != nil {
			t.Fatal(err)
		}
		if d := mat.MaxAbsDiff(got.W, want.W); d > 1e-6 {
			t.Fatalf("prefix %d: incremental differs from batch by %v", i+1, d)
		}
	}
}

func TestIncrementalModelBeforeAllClasses(t *testing.T) {
	inc, err := NewIncremental(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Model(); err == nil {
		t.Fatal("empty model accepted")
	}
	if err := inc.Add([]float64{1, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Model(); err == nil {
		t.Fatal("model with missing classes accepted")
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(0, 3, 1); err == nil {
		t.Fatal("0 features accepted")
	}
	if _, err := NewIncremental(4, 1, 1); err == nil {
		t.Fatal("1 class accepted")
	}
	if _, err := NewIncremental(4, 3, 0); err == nil {
		t.Fatal("alpha 0 accepted")
	}
	inc, err := NewIncremental(4, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Add([]float64{1, 2}, 0); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if err := inc.Add([]float64{1, 2, 3, 4}, 9); err == nil {
		t.Fatal("bad label accepted")
	}
}
