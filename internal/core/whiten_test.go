package core

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/mat"
)

func TestWhitenWithinMakesScatterIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, labels := gaussianBlobs(rng, 200, 12, 4, 5)
	model, err := FitDense(x, labels, 4, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.WhitenWithin(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	// Recompute the (shrunk) within-class scatter of the new embedding; it
	// must be close to identity-scaled (diagonal ≈ equal, off-diagonal
	// small relative to diagonal).
	emb := model.TransformDense(x)
	d := emb.Cols
	means := mat.NewDense(4, d)
	counts := make([]float64, 4)
	for i, y := range labels {
		counts[y]++
		for j := 0; j < d; j++ {
			means.Set(y, j, means.At(y, j)+emb.At(i, j))
		}
	}
	for k := 0; k < 4; k++ {
		for j := 0; j < d; j++ {
			means.Set(k, j, means.At(k, j)/counts[k])
		}
	}
	sw := mat.NewDense(d, d)
	for i, y := range labels {
		for a := 0; a < d; a++ {
			da := emb.At(i, a) - means.At(y, a)
			for b := 0; b < d; b++ {
				db := emb.At(i, b) - means.At(y, b)
				sw.Set(a, b, sw.At(a, b)+da*db)
			}
		}
	}
	sw.Scale(1 / float64(len(labels)-4))
	// With shrinkage the result is (1−γ)·I-ish; check off-diagonals are
	// small relative to diagonals and diagonals are similar.
	var diagMin, diagMax float64 = math.Inf(1), 0
	for a := 0; a < d; a++ {
		diagMin = math.Min(diagMin, sw.At(a, a))
		diagMax = math.Max(diagMax, sw.At(a, a))
		for b := 0; b < d; b++ {
			if a != b && math.Abs(sw.At(a, b)) > 0.15*math.Sqrt(sw.At(a, a)*sw.At(b, b)) {
				t.Fatalf("off-diagonal (%d,%d)=%v too large", a, b, sw.At(a, b))
			}
		}
	}
	if diagMax > 3*diagMin {
		t.Fatalf("whitened diagonal spread too wide: [%v, %v]", diagMin, diagMax)
	}
}

func TestWhitenPreservesTrainingSeparability(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, labels := gaussianBlobs(rng, 150, 10, 3, 8)
	plain, err := FitDense(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	white, err := FitDenseWhitened(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Whitening is an invertible linear map: class order along any
	// direction can change but nearest-centroid training error on well
	// separated blobs stays ~zero for both.
	for _, m := range []*Model{plain, white} {
		emb := m.TransformDense(x)
		errRate := centroidTrainError(emb, labels, 3)
		if errRate > 0.05 {
			t.Fatalf("training error %.3f too high", errRate)
		}
	}
}

func centroidTrainError(emb *mat.Dense, labels []int, c int) float64 {
	d := emb.Cols
	cent := mat.NewDense(c, d)
	counts := make([]float64, c)
	for i, y := range labels {
		counts[y]++
		for j := 0; j < d; j++ {
			cent.Set(y, j, cent.At(y, j)+emb.At(i, j))
		}
	}
	for k := 0; k < c; k++ {
		for j := 0; j < d; j++ {
			cent.Set(k, j, cent.At(k, j)/counts[k])
		}
	}
	wrong := 0
	for i, y := range labels {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < c; k++ {
			var dist float64
			for j := 0; j < d; j++ {
				diff := emb.At(i, j) - cent.At(k, j)
				dist += diff * diff
			}
			if dist < bestD {
				best, bestD = k, dist
			}
		}
		if best != y {
			wrong++
		}
	}
	return float64(wrong) / float64(len(labels))
}

func TestWhitenNoopOnCollapse(t *testing.T) {
	// n > m with α→0: training embedding collapses per class; whitening
	// must leave the model untouched.
	rng := rand.New(rand.NewSource(3))
	m, n, c := 15, 40, 3
	x := mat.NewDense(m, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := randLabels(rng, m, c)
	model, err := FitDense(x, labels, c, Options{Alpha: 0})
	if err != nil {
		t.Fatal(err)
	}
	before := model.W.Clone()
	emb := model.TransformDense(x)
	// collapse means within-class scatter ~0; WhitenWithin may still see
	// tiny roundoff, so force exact collapse by snapping per-class values.
	for i, y := range labels {
		for p := 0; p < i; p++ {
			if labels[p] == y {
				copy(emb.RowView(i), emb.RowView(p))
				break
			}
		}
	}
	if err := model.WhitenWithin(emb, labels); err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(model.W, before); d != 0 {
		t.Fatalf("collapse whitening modified W by %v", d)
	}
}

func TestWhitenValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := gaussianBlobs(rng, 60, 8, 3, 5)
	model, err := FitDense(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformDense(x)
	if err := model.WhitenWithin(emb, labels[:10]); err == nil {
		t.Fatal("label length mismatch accepted")
	}
	if err := model.WhitenWithin(mat.NewDense(60, 1), labels); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestUpperInverse(t *testing.T) {
	r := mat.FromRows([][]float64{
		{2, 1, 3},
		{0, 4, -1},
		{0, 0, 0.5},
	})
	inv := upperInverse(r)
	prod := mat.Mul(r, inv)
	if !mat.Equalish(prod, mat.Identity(3), 1e-12) {
		t.Fatalf("R·R⁻¹ != I:\n%v", prod)
	}
}

func TestFitSparseWhitenedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, labels := gaussianBlobs(rng, 80, 20, 3, 6)
	xs := toSparse(x)
	model, err := FitSparseWhitened(xs, labels, 3, Options{Alpha: 1, LSQRIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformSparse(xs)
	if errRate := centroidTrainError(emb, labels, 3); errRate > 0.05 {
		t.Fatalf("training error %.3f", errRate)
	}
}
