package core

import (
	"fmt"

	"srda/internal/decomp"
	"srda/internal/mat"
	"srda/internal/sparse"
)

// WhitenWithin rescales the model so that the within-class scatter of the
// (training) embedding becomes the identity.  SRDA's raw directions are
// regression solutions against unit-norm responses: they span exactly the
// LDA subspace, but with a different within-subspace linear metric.
// Classical LDA reports coordinates in which the within-class Mahalanobis
// metric is Euclidean, which is what nearest-centroid / k-NN classifiers
// implicitly assume.  Whitening the embedding with the Cholesky factor of
// its within-class scatter (an O((c−1)³) post-step, the "optimal scoring"
// correction of Hastie et al.) makes SRDA's classification behavior match
// RLDA's — the paper's near-identical SRDA/RLDA error columns.
//
// The embedding emb must be the model's output on the training data whose
// labels are supplied.  The model is modified in place; on exact class
// collapse (the n > m regime, zero within-class scatter) it is left
// untouched since every metric then classifies identically.
func (m *Model) WhitenWithin(emb *mat.Dense, labels []int) error {
	if emb.Cols != m.Dim() {
		return fmt.Errorf("core: embedding has %d dims, model %d", emb.Cols, m.Dim())
	}
	rInv, err := WhiteningTransform(emb, labels, m.NumClasses)
	if err != nil {
		return err
	}
	if rInv == nil {
		return nil // exact collapse: nothing to do
	}
	d := m.Dim()
	m.W = mat.Mul(m.W, rInv)
	bNew := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i <= j; i++ { // (R⁻ᵀ)[j][i] = R⁻¹[i][j]
			s += rInv.At(i, j) * m.B[i]
		}
		bNew[j] = s
	}
	m.B = bNew
	m.InvalidateCache() // W changed shape-preservingly; drop the stale Wᵀ
	// Stats-based centroids (the primal fit's) were computed under the old
	// metric; drop them so callers recompute in the whitened embedding.
	m.Centroids = nil
	return nil
}

// WhiteningTransform computes the upper-triangular-inverse map R⁻¹ that
// whitens an embedding's (shrinkage-regularized) within-class scatter:
// applying z ↦ R⁻ᵀz makes it the identity.  Returns nil on exact class
// collapse, where every metric classifies identically.  Shared by the
// linear (Model.WhitenWithin) and kernel SRDA paths.
func WhiteningTransform(emb *mat.Dense, labels []int, numClasses int) (*mat.Dense, error) {
	if emb.Rows != len(labels) {
		return nil, fmt.Errorf("core: %d embedded rows but %d labels", emb.Rows, len(labels))
	}
	d := emb.Cols
	c := numClasses
	counts := make([]float64, c)
	means := mat.NewDense(c, d)
	for i, y := range labels {
		if y < 0 || y >= c {
			return nil, fmt.Errorf("core: label %d out of range", y)
		}
		counts[y]++
		row := emb.RowView(i)
		mrow := means.RowView(y)
		for j := range row {
			mrow[j] += row[j]
		}
	}
	for k := 0; k < c; k++ {
		if counts[k] == 0 { //srdalint:ignore floatcmp counts hold exact integer increments; zero means an empty class
			return nil, fmt.Errorf("core: class %d has no samples", k)
		}
		mrow := means.RowView(k)
		for j := range mrow {
			mrow[j] /= counts[k]
		}
	}
	// Within-class scatter of the embedding.
	sw := mat.NewDense(d, d)
	diff := make([]float64, d)
	for i, y := range labels {
		row := emb.RowView(i)
		mrow := means.RowView(y)
		for j := range row {
			diff[j] = row[j] - mrow[j]
		}
		for a := 0; a < d; a++ {
			if diff[a] == 0 { //srdalint:ignore floatcmp exact zero class-mean difference adds nothing to scatter
				continue
			}
			swr := sw.RowView(a)
			for b := 0; b < d; b++ {
				swr[b] += diff[a] * diff[b]
			}
		}
	}
	denom := float64(emb.Rows - c)
	if denom < 1 {
		denom = 1
	}
	var trace float64
	for j := 0; j < d; j++ {
		trace += sw.At(j, j)
	}
	if trace == 0 { //srdalint:ignore floatcmp exact zero trace is the collapsed-embedding degenerate case
		// Exact collapse: embedding already separates classes perfectly on
		// the training data; any whitening is a no-op for classification.
		return nil, nil
	}
	// Shrink the scatter estimate toward a scaled identity.  With few
	// training samples per class the d×d within-scatter is poorly
	// estimated and its inverse would amplify noise directions; the
	// shrinkage intensity γ grows as the degrees of freedom per dimension
	// fall (a Ledoit–Wolf-style rule), vanishing in the well-sampled
	// regime.
	gamma := float64(d) / (float64(d) + denom)
	avg := trace / float64(d) / denom
	for a := 0; a < d; a++ {
		swr := sw.RowView(a)
		for b := 0; b < d; b++ {
			swr[b] = (1 - gamma) * swr[b] / denom
		}
		swr[a] += gamma*avg + 1e-12*avg
	}
	ch, err := decomp.NewCholesky(sw)
	if err != nil {
		return nil, fmt.Errorf("core: whitening scatter not positive definite: %w", err)
	}
	return upperInverse(ch.R), nil
}

// upperInverse inverts an upper-triangular matrix by back substitution.
func upperInverse(r *mat.Dense) *mat.Dense {
	n := r.Rows
	inv := mat.NewDense(n, n)
	for j := 0; j < n; j++ {
		inv.Set(j, j, 1/r.At(j, j))
		for i := j - 1; i >= 0; i-- {
			var s float64
			for k := i + 1; k <= j; k++ {
				s += r.At(i, k) * inv.At(k, j)
			}
			inv.Set(i, j, -s/r.At(i, i))
		}
	}
	return inv
}

// FitDenseWhitened trains SRDA and whitens the embedding against the
// training data — the configuration the experiment harness (and most
// users classifying in the embedded space) wants.
func FitDenseWhitened(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	model, err := FitDense(x, labels, numClasses, opt)
	if err != nil {
		return nil, err
	}
	sp := opt.Trace.Start("whiten")
	err = model.WhitenWithin(model.TransformDense(x), labels)
	sp.End()
	if err != nil {
		return nil, err
	}
	return model, nil
}

// FitSparseWhitened is the sparse counterpart of FitDenseWhitened.
func FitSparseWhitened(x *sparse.CSR, labels []int, numClasses int, opt Options) (*Model, error) {
	model, err := FitSparse(x, labels, numClasses, opt)
	if err != nil {
		return nil, err
	}
	sp := opt.Trace.Start("whiten")
	err = model.WhitenWithin(model.TransformSparse(x), labels)
	sp.End()
	if err != nil {
		return nil, err
	}
	return model, nil
}
