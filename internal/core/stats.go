package core

import (
	"fmt"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
	"srda/internal/regress"
)

// SuffStats holds the bounded-memory sufficient statistics of an SRDA
// primal fit: the upper triangle of the augmented Gram matrix X̃ᵀX̃, the
// per-class sums of augmented samples, and the class counts.  Memory is
// O(n² + c·n) regardless of how many samples stream through — the state
// the online trainer keeps between refits.
//
// The per-sample absorption loop is, deliberately, the same loop
// mat.ParGram's gramUpperRange runs with the sample index outermost: the
// same exact-zero skip, the same Axpy over the row tail.  Because ParGram
// shards only output rows and feeds every row its rank-one contributions
// in ascending sample order, absorbing a dataset sample by sample leaves
// a Gram upper triangle bitwise identical to mat.ParGram on the same rows
// at any worker count.  That identity — not an approximation — is what
// lets FitStats promise Float64bits equality with the batch fit.
type SuffStats struct {
	n, c   int
	counts []int
	// classSums is c×(n+1): per-class sums of augmented samples [x, 1]
	// (the last column duplicates counts).
	classSums *mat.Dense
	// gram is (n+1)×(n+1) with only the upper triangle maintained;
	// decomp.NewCholesky reads nothing else.
	gram *mat.Dense
	seen int
	aug  []float64 // scratch: augmented sample
}

// NewSuffStats starts empty sufficient statistics for
// numFeatures-dimensional samples in numClasses classes.
func NewSuffStats(numFeatures, numClasses int) (*SuffStats, error) {
	if numFeatures < 1 {
		return nil, fmt.Errorf("core: need at least 1 feature")
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes")
	}
	na := numFeatures + 1
	return &SuffStats{
		n:         numFeatures,
		c:         numClasses,
		counts:    make([]int, numClasses),
		classSums: mat.NewDense(numClasses, na),
		gram:      mat.NewDense(na, na),
		aug:       make([]float64, na),
	}, nil
}

// NumFeatures returns n.
func (s *SuffStats) NumFeatures() int { return s.n }

// NumClasses returns c.
func (s *SuffStats) NumClasses() int { return s.c }

// Seen returns the number of absorbed samples.
func (s *SuffStats) Seen() int { return s.seen }

// ClassCounts returns a copy of the per-class sample counts.
func (s *SuffStats) ClassCounts() []int {
	return append([]int(nil), s.counts...)
}

// ClassMean writes class k's running feature mean into dst (allocated
// when nil) and returns it, or nil when the class is still empty.
func (s *SuffStats) ClassMean(k int, dst []float64) []float64 {
	if k < 0 || k >= s.c || s.counts[k] == 0 {
		return nil
	}
	if dst == nil {
		dst = make([]float64, s.n)
	}
	row := s.classSums.RowView(k)
	inv := 1 / float64(s.counts[k])
	for j := 0; j < s.n; j++ {
		dst[j] = row[j] * inv
	}
	return dst
}

// Absorb accumulates one dense labeled sample in O(n²).
func (s *SuffStats) Absorb(x []float64, label int) error {
	if len(x) != s.n {
		return fmt.Errorf("core: sample has %d features, expected %d", len(x), s.n)
	}
	if label < 0 || label >= s.c {
		return fmt.Errorf("core: label %d out of range [0,%d)", label, s.c)
	}
	copy(s.aug, x)
	s.aug[s.n] = 1
	s.absorbAug(label)
	return nil
}

// AbsorbSparse accumulates one CSR-form labeled sample.  The sample is
// densified into the scratch vector first, so the arithmetic — and hence
// the resulting statistics — is bitwise identical to Absorb on the
// densified row.
func (s *SuffStats) AbsorbSparse(cols []int, vals []float64, label int) error {
	if label < 0 || label >= s.c {
		return fmt.Errorf("core: label %d out of range [0,%d)", label, s.c)
	}
	for t, j := range cols {
		if j < 0 || j >= s.n {
			return fmt.Errorf("core: feature index %d out of range for %d features", j, s.n)
		}
		_ = t
	}
	for j := 0; j < s.n; j++ {
		s.aug[j] = 0
	}
	for t, j := range cols {
		s.aug[j] = vals[t]
	}
	s.aug[s.n] = 1
	s.absorbAug(label)
	return nil
}

// absorbAug folds the augmented scratch sample into the Gram upper
// triangle and the class sums.  The triangle loop mirrors
// mat.gramUpperRange exactly (see the type comment).
func (s *SuffStats) absorbAug(label int) {
	na := s.n + 1
	g := s.gram
	for i := 0; i < na; i++ {
		v := s.aug[i]
		if v == 0 { //srdalint:ignore floatcmp exact sparsity skip shared with mat.ParGram, part of the bitwise-equality contract
			continue
		}
		blas.Axpy(v, s.aug[i:], g.Data[i*g.Stride+i:i*g.Stride+na])
	}
	blas.Axpy(1, s.aug, s.classSums.RowView(label))
	s.counts[label]++
	s.seen++
}

// Clone deep-copies the statistics; the online trainer hands clones to
// asynchronous refits so absorption can continue concurrently.
func (s *SuffStats) Clone() *SuffStats {
	return &SuffStats{
		n:         s.n,
		c:         s.c,
		counts:    append([]int(nil), s.counts...),
		classSums: s.classSums.Clone(),
		gram:      s.gram.Clone(),
		seen:      s.seen,
		aug:       make([]float64, s.n+1),
	}
}

// FitStats solves the SRDA primal fit from sufficient statistics alone —
// the incremental ↔ batch bridge.  No pass over the data: responses come
// from the class counts (O(c³)), X̃ᵀY collapses to classSumsᵀ·V because
// responses are constant within classes, and the Gram matrix is factored
// fresh with the ridge added to a copy, leaving s reusable for further
// absorption.  The returned model carries stats-based centroids (the
// embedded class means), so it is a complete nearest-centroid classifier.
//
// Called on statistics absorbed sample by sample in dataset row order,
// the result is bitwise identical to the batch FitDense primal fit on the
// same data (which routes through this same function).
func FitStats(s *SuffStats, opt Options) (*Model, error) {
	if opt.Alpha < 0 {
		return nil, fmt.Errorf("core: negative alpha %v", opt.Alpha)
	}
	sp := opt.Trace.Start("responses")
	rt, err := ResponsesFromCounts(s.counts)
	sp.End()
	if err != nil {
		return nil, err
	}
	na := s.n + 1
	// Ridge on a copy: the accumulated Gram stays raw for future refits.
	g := s.gram.Clone()
	for i := 0; i < na; i++ {
		g.Set(i, i, g.At(i, i)+opt.Alpha)
	}
	sp = opt.Trace.Start("cholesky")
	ch, err := decomp.NewCholesky(g)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("core: normal equations not positive definite (alpha=%v): %w", opt.Alpha, err)
	}
	sp = opt.Trace.Start("xty")
	// X̃ᵀY = classSumsᵀ · values  ((n+1)×c · c×(c−1))
	xty := mat.MulTA(s.classSums, rt.Values)
	sp.End()
	sp = opt.Trace.Start("solve")
	wAug := ch.Solve(xty)
	sp.End()
	k := wAug.Cols
	model := &Model{
		W:          wAug.Slice(0, s.n, 0, k).Clone(),
		B:          make([]float64, k),
		NumClasses: s.c,
		Alpha:      opt.Alpha,
		Strategy:   regress.Primal,
		Workers:    opt.Workers,
	}
	for j := 0; j < k; j++ {
		model.B[j] = wAug.At(s.n, j)
	}
	model.Stats.Strategy = regress.Primal
	model.Stats.CondEstimate = ch.CondEstimate()
	setStatsCentroids(model, s)
	return model, nil
}

// setStatsCentroids stores the embedded class means computed from the
// running class sums: centroid_k = Wᵀ·mean_k + b.  Linearity makes this
// the exact embedding of the class mean, and both the streaming and the
// batch primal path derive it from identical statistics, so the centroids
// inherit the bitwise-equality guarantee.
func setStatsCentroids(m *Model, s *SuffStats) {
	cent := mat.NewDense(s.c, m.Dim())
	mean := make([]float64, s.n)
	for k := 0; k < s.c; k++ {
		row := s.classSums.RowView(k)
		inv := 1 / float64(s.counts[k])
		for j := 0; j < s.n; j++ {
			mean[j] = row[j] * inv
		}
		m.TransformVec(mean, cent.RowView(k))
	}
	m.Centroids = cent
}

// fitDensePrimalStats is the batch entry of the bridge: it builds the
// same sufficient statistics a streaming pass would — the Gram through
// mat.ParGram (bitwise identical to per-sample absorption at any worker
// count), the class sums in sample order — and solves through FitStats.
// Compared with the previous regress-layer primal path this also saves
// the O(m·n·c) X̃ᵀY product (now O(m·c + n·c²)) and the extra full-data
// projection pass that mean-of-embedding centroids used to cost.
func fitDensePrimalStats(x *mat.Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	counts, err := classStats(labels, numClasses)
	if err != nil {
		return nil, err
	}
	s := &SuffStats{
		n:         x.Cols,
		c:         numClasses,
		counts:    counts,
		classSums: mat.NewDense(numClasses, x.Cols+1),
		seen:      x.Rows,
		aug:       make([]float64, x.Cols+1),
	}
	xa := augmentOnes(x)
	sp := opt.Trace.Start("gram")
	s.gram = mat.ParGram(opt.Workers, xa)
	for i := 0; i < x.Rows; i++ {
		blas.Axpy(1, xa.RowView(i), s.classSums.RowView(labels[i]))
	}
	sp.End()
	return FitStats(s, opt)
}

// augmentOnes appends the constant-1 intercept column.
func augmentOnes(x *mat.Dense) *mat.Dense {
	xa := mat.NewDense(x.Rows, x.Cols+1)
	for i := 0; i < x.Rows; i++ {
		row := xa.RowView(i)
		copy(row, x.RowView(i))
		row[x.Cols] = 1
	}
	return xa
}
