package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"srda/internal/decomp"
	"srda/internal/graph"
	"srda/internal/mat"
	"srda/internal/regress"
	"srda/internal/solver"
	"srda/internal/sparse"
)

// graphClassHelper builds a class graph (indirection keeps the import in
// one place for tests that only sometimes need it).
func graphClassHelper(labels []int, c int) (*graph.Graph, error) {
	return graph.ClassGraph(labels, c)
}

func randLabels(rng *rand.Rand, m, c int) []int {
	labels := make([]int, m)
	for i := range labels {
		labels[i] = i % c // every class populated
	}
	rng.Shuffle(m, func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

// gaussianBlobs places class k at mean (k*sep, 0, ..., 0) with unit noise.
func gaussianBlobs(rng *rand.Rand, m, n, c int, sep float64) (*mat.Dense, []int) {
	x := mat.NewDense(m, n)
	labels := randLabels(rng, m, c)
	for i := 0; i < m; i++ {
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[0] += sep * float64(labels[i])
		if n > 1 {
			row[1] -= sep * float64(labels[i]*labels[i]) * 0.3
		}
	}
	return x, labels
}

func TestClassStatsValidation(t *testing.T) {
	if _, err := classStats([]int{0, 1}, 1); err == nil {
		t.Fatal("single class accepted")
	}
	if _, err := classStats([]int{0, 2}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := classStats([]int{0, 0}, 2); err == nil {
		t.Fatal("empty class accepted")
	}
	counts, err := classStats([]int{0, 1, 1, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts=%v", counts)
	}
}

func TestResponsesCountAndOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, c int }{{10, 2}, {30, 3}, {100, 7}, {68, 68 / 2}} {
		labels := randLabels(rng, tc.m, tc.c)
		rt, err := GenerateResponses(labels, tc.c)
		if err != nil {
			t.Fatalf("m=%d c=%d: %v", tc.m, tc.c, err)
		}
		if rt.NumResponses() != tc.c-1 {
			t.Fatalf("got %d responses want %d", rt.NumResponses(), tc.c-1)
		}
		y := rt.Materialize(labels)
		// columns orthonormal and orthogonal to the ones vector (eq. 16)
		g := mat.MulTA(y, y)
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g.At(i, j)-want) > 1e-9 {
					t.Fatalf("yᵀy[%d][%d]=%v", i, j, g.At(i, j))
				}
			}
		}
		for j := 0; j < y.Cols; j++ {
			var s float64
			for i := 0; i < y.Rows; i++ {
				s += y.At(i, j)
			}
			if math.Abs(s) > 1e-9 {
				t.Fatalf("response %d not centered: sum=%v", j, s)
			}
		}
	}
}

func TestResponsesMatchNaiveGramSchmidt(t *testing.T) {
	// The O(c³) weighted Gram–Schmidt must agree (up to sign) with running
	// plain Gram–Schmidt on the materialized m×(c+1) candidate matrix.
	rng := rand.New(rand.NewSource(2))
	m, c := 40, 5
	labels := randLabels(rng, m, c)
	rt, err := GenerateResponses(labels, c)
	if err != nil {
		t.Fatal(err)
	}
	got := rt.Materialize(labels)

	naive := mat.NewDense(m, c+1)
	for i := 0; i < m; i++ {
		naive.Set(i, 0, 1)
		naive.Set(i, labels[i]+1, 1)
	}
	kept := decomp.GramSchmidt(naive, 1e-8)
	if kept != c {
		t.Fatalf("naive GS kept %d", kept)
	}
	// collect nonzero columns after the first
	var cols [][]float64
	for j := 1; j < c+1; j++ {
		col := naive.ColCopy(j, nil)
		var nrm float64
		for _, v := range col {
			nrm += v * v
		}
		if nrm > 0.5 {
			cols = append(cols, col)
		}
	}
	if len(cols) != c-1 {
		t.Fatalf("naive GS produced %d responses", len(cols))
	}
	for j := 0; j < c-1; j++ {
		var dotPlus, dotMinus float64
		for i := 0; i < m; i++ {
			dotPlus += math.Abs(got.At(i, j) - cols[j][i])
			dotMinus += math.Abs(got.At(i, j) + cols[j][i])
		}
		if math.Min(dotPlus, dotMinus) > 1e-8 {
			t.Fatalf("response %d disagrees with naive GS (%.3g / %.3g)", j, dotPlus, dotMinus)
		}
	}
}

func TestResponsesConstantWithinClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := randLabels(rng, 60, 4)
	rt, err := GenerateResponses(labels, 4)
	if err != nil {
		t.Fatal(err)
	}
	y := rt.Materialize(labels)
	for i := 1; i < len(labels); i++ {
		for p := 0; p < i; p++ {
			if labels[i] != labels[p] {
				continue
			}
			for j := 0; j < y.Cols; j++ {
				if y.At(i, j) != y.At(p, j) {
					t.Fatal("same-class samples got different responses")
				}
			}
		}
	}
}

func TestFitDenseSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, labels := gaussianBlobs(rng, 150, 10, 3, 8)
	model, err := FitDense(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if model.Dim() != 2 {
		t.Fatalf("Dim=%d want 2", model.Dim())
	}
	emb := model.TransformDense(x)
	// nearest-centroid in embedded space must classify training data well
	cent := mat.NewDense(3, 2)
	counts := make([]float64, 3)
	for i, lab := range labels {
		counts[lab]++
		for j := 0; j < 2; j++ {
			cent.Set(lab, j, cent.At(lab, j)+emb.At(i, j))
		}
	}
	for k := 0; k < 3; k++ {
		for j := 0; j < 2; j++ {
			cent.Set(k, j, cent.At(k, j)/counts[k])
		}
	}
	errors := 0
	for i, lab := range labels {
		best, bestD := -1, math.Inf(1)
		for k := 0; k < 3; k++ {
			var d float64
			for j := 0; j < 2; j++ {
				diff := emb.At(i, j) - cent.At(k, j)
				d += diff * diff
			}
			if d < bestD {
				best, bestD = k, d
			}
		}
		if best != lab {
			errors++
		}
	}
	if frac := float64(errors) / float64(len(labels)); frac > 0.05 {
		t.Fatalf("training error %.2f too high for well-separated blobs", frac)
	}
}

func TestCorollary3SameClassCollapses(t *testing.T) {
	// n > m with independent samples: as α→0 all samples of one class map
	// to (nearly) the same point in the SRDA subspace (paper, discussion
	// after Corollary 3).
	rng := rand.New(rand.NewSource(5))
	m, n, c := 20, 50, 4
	x := mat.NewDense(m, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := randLabels(rng, m, c)
	model, err := FitDense(x, labels, c, Options{Alpha: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	emb := model.TransformDense(x)
	for i := 1; i < m; i++ {
		for p := 0; p < i; p++ {
			if labels[i] != labels[p] {
				continue
			}
			for j := 0; j < emb.Cols; j++ {
				if math.Abs(emb.At(i, j)-emb.At(p, j)) > 1e-5 {
					t.Fatalf("same-class samples %d,%d differ at dim %d: %v vs %v",
						p, i, j, emb.At(p, j), emb.At(i, j))
				}
			}
		}
	}
	// and different classes must not collapse together
	var minGap = math.Inf(1)
	for i := 1; i < m; i++ {
		for p := 0; p < i; p++ {
			if labels[i] == labels[p] {
				continue
			}
			var d float64
			for j := 0; j < emb.Cols; j++ {
				diff := emb.At(i, j) - emb.At(p, j)
				d += diff * diff
			}
			minGap = math.Min(minGap, math.Sqrt(d))
		}
	}
	if minGap < 1e-3 {
		t.Fatalf("distinct classes collapsed: gap=%v", minGap)
	}
}

func TestFitSparseMatchesFitDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n, c := 80, 40, 3
	d := mat.NewDense(m, n)
	b := sparse.NewBuilder(m, n)
	labels := randLabels(rng, m, c)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.2 {
				v := rng.NormFloat64() + float64(labels[i])
				d.Set(i, j, v)
				b.Add(i, j, v)
			}
		}
	}
	s := b.Build()
	opt := Options{Alpha: 0.5, LSQRIter: 500}
	md, err := FitDense(d, labels, c, Options{Alpha: 0.5, Strategy: regress.IterLSQR, LSQRIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := FitSparse(s, labels, c, opt)
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(md.W, ms.W); diff > 1e-6 {
		t.Fatalf("sparse vs dense W differ by %v", diff)
	}
	// primal closed form agrees too
	mp, err := FitDense(d, labels, c, Options{Alpha: 0.5, Strategy: regress.Primal})
	if err != nil {
		t.Fatal(err)
	}
	if diff := mat.MaxAbsDiff(mp.W, ms.W); diff > 1e-4 {
		t.Fatalf("primal vs lsqr W differ by %v", diff)
	}
}

func TestTransformSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m, n, c := 50, 30, 3
	x, labels := gaussianBlobs(rng, m, n, c, 4)
	model, err := FitDense(x, labels, c, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	xs := sparse.FromDense(x, 0)
	e1 := model.TransformDense(x)
	e2 := model.TransformSparse(xs)
	if diff := mat.MaxAbsDiff(e1, e2); diff > 1e-9 {
		t.Fatalf("transforms differ by %v", diff)
	}
	// single-vector path
	for i := 0; i < 5; i++ {
		v := model.TransformVec(x.RowView(i), nil)
		for j := range v {
			if math.Abs(v[j]-e1.At(i, j)) > 1e-10 {
				t.Fatalf("TransformVec differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x, labels := gaussianBlobs(rng, 60, 12, 3, 5)
	model, err := FitDense(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(loaded.W, model.W, 0) {
		t.Fatal("W not preserved")
	}
	if loaded.NumClasses != 3 || loaded.Alpha != 1 {
		t.Fatal("metadata not preserved")
	}
	e1 := model.TransformDense(x)
	e2 := loaded.TransformDense(x)
	if !mat.Equalish(e1, e2, 0) {
		t.Fatal("loaded model transforms differently")
	}
}

func TestLoadRejectsCorruptStream(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("corrupt stream accepted")
	}
}

func TestFitValidatesInput(t *testing.T) {
	x := mat.NewDense(4, 2)
	if _, err := FitDense(x, []int{0, 1}, 2, Options{}); err == nil {
		t.Fatal("label count mismatch accepted")
	}
	if _, err := FitDense(x, []int{0, 1, 0, 5}, 2, Options{}); err == nil {
		t.Fatal("bad label accepted")
	}
}

func TestResponsesPropertyAnyLabeling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 2 + rng.Intn(8)
		m := c + rng.Intn(60)
		labels := randLabels(rng, m, c)
		rt, err := GenerateResponses(labels, c)
		if err != nil {
			return false
		}
		y := rt.Materialize(labels)
		g := mat.MulTA(y, y)
		for i := 0; i < g.Rows; i++ {
			for j := 0; j < g.Cols; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g.At(i, j)-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAlphaShrinksEmbeddingScale(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, labels := gaussianBlobs(rng, 90, 15, 3, 5)
	var prev = math.Inf(1)
	for _, alpha := range []float64{0.01, 1, 100} {
		model, err := FitDense(x, labels, 3, Options{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		nrm := model.W.Norm()
		if nrm > prev+1e-12 {
			t.Fatalf("‖W‖ did not shrink with alpha: %v then %v", prev, nrm)
		}
		prev = nrm
	}
}

// toSparse converts a dense matrix to CSR for cross-path tests.
func toSparse(x *mat.Dense) *sparse.CSR {
	return sparse.FromDense(x, 0)
}

func TestSetCentroidsAndPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	x, labels := gaussianBlobs(rng, 90, 8, 3, 8)
	model, err := FitDense(x, labels, 3, Options{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
		t.Fatal(err)
	}
	if model.Centroids.Rows != 3 || model.Centroids.Cols != 2 {
		t.Fatalf("centroids %dx%d", model.Centroids.Rows, model.Centroids.Cols)
	}
	pred := model.PredictDense(x)
	if e := float64(countWrong(pred, labels)) / float64(len(labels)); e > 0.05 {
		t.Fatalf("training error %v", e)
	}
	if got := model.PredictVec(x.RowView(0)); got != pred[0] {
		t.Fatal("PredictVec disagrees with PredictDense")
	}
	xs := toSparse(x)
	sp := model.PredictSparse(xs)
	for i := range pred {
		if sp[i] != pred[i] {
			t.Fatal("PredictSparse disagrees with PredictDense")
		}
	}
	// validation
	if err := model.SetCentroids(model.TransformDense(x), labels[:4]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := model.SetCentroids(mat.NewDense(90, 1), labels); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func countWrong(pred, truth []int) int {
	n := 0
	for i := range pred {
		if pred[i] != truth[i] {
			n++
		}
	}
	return n
}

func TestPredictPanicsWithoutCentroids(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	x, labels := gaussianBlobs(rng, 30, 5, 2, 5)
	// The LSQR path returns a centroid-less model (the primal path now
	// carries stats-based centroids by construction).
	model, err := FitDense(x, labels, 2, Options{Alpha: 1, Strategy: regress.IterLSQR, LSQRIter: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	model.PredictVec(x.RowView(0))
}

func TestFitSROperatorMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	x, labels := gaussianBlobs(rng, 60, 10, 3, 6)
	g, err := graphClassHelper(labels, 3)
	if err != nil {
		t.Fatal(err)
	}
	op, err := FitSROperator(solver.DenseOp{A: x}, g, SROptions{Dim: 2, Alpha: 0.5, Seed: 3, LSQRIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	dn, err := FitSRDense(x, g, SROptions{Dim: 2, Alpha: 0.5, Seed: 3, Strategy: regress.IterLSQR, LSQRIter: 300})
	if err != nil {
		t.Fatal(err)
	}
	if d := mat.MaxAbsDiff(op.W, dn.W); d > 1e-8 {
		t.Fatalf("operator SR differs from dense SR by %v", d)
	}
}
