package core

import (
	"fmt"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/mat"
)

// Incremental maintains an SRDA model under a stream of training samples
// with exact results: after any sequence of Add calls, Model() equals the
// batch normal-equations fit on the accumulated data.
//
// This answers the selling point of the IDR/QR baseline ("incremental
// dimension reduction") on SRDA's own terms.  The trick is that all the
// batch state factorizes into stream-updatable pieces:
//
//   - the regularized augmented Gram matrix G = X̃ᵀX̃ + αI changes by the
//     rank-one term x̃·x̃ᵀ per sample — an O(n²) Cholesky update;
//   - the cross-product X̃ᵀY would seem to change everywhere when class
//     counts shift (the responses ȳ depend on all counts), but responses
//     are constant within classes, so X̃ᵀY = Sᵀ·V where S is the c×(n+1)
//     matrix of per-class feature sums (stream-updatable) and V the
//     c×(c−1) response table (recomputed from counts in O(c³)).
//
// Per added sample: O(n²) update + O(1) bookkeeping.  Per model refresh:
// O(c³) responses + O(c·n²) triangular solves — no pass over the data.
type Incremental struct {
	n, c   int
	alpha  float64
	counts []int
	// classSums is c×(n+1): per-class sums of augmented samples [x, 1]
	// (the last column therefore duplicates counts).
	classSums *mat.Dense
	chol      *decomp.Cholesky
	seen      int
	aug       []float64 // scratch: augmented sample
}

// NewIncremental starts an empty incremental SRDA with the given shape
// and ridge penalty (alpha must be > 0: the empty Gram matrix is αI).
func NewIncremental(numFeatures, numClasses int, alpha float64) (*Incremental, error) {
	if numFeatures < 1 {
		return nil, fmt.Errorf("core: need at least 1 feature")
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("core: need at least 2 classes")
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("core: incremental SRDA needs alpha > 0, got %v", alpha)
	}
	na := numFeatures + 1
	g := mat.NewDense(na, na)
	for i := 0; i < na; i++ {
		g.Set(i, i, alpha)
	}
	ch, err := decomp.NewCholesky(g)
	if err != nil {
		return nil, err
	}
	return &Incremental{
		n:         numFeatures,
		c:         numClasses,
		alpha:     alpha,
		counts:    make([]int, numClasses),
		classSums: mat.NewDense(numClasses, na),
		chol:      ch,
		aug:       make([]float64, na),
	}, nil
}

// Add absorbs one labeled sample in O(n²).
func (inc *Incremental) Add(x []float64, label int) error {
	if len(x) != inc.n {
		return fmt.Errorf("core: sample has %d features, expected %d", len(x), inc.n)
	}
	if label < 0 || label >= inc.c {
		return fmt.Errorf("core: label %d out of range [0,%d)", label, inc.c)
	}
	copy(inc.aug, x)
	inc.aug[inc.n] = 1
	inc.chol.Update(inc.aug)
	blas.Axpy(1, inc.aug, inc.classSums.RowView(label))
	inc.counts[label]++
	inc.seen++
	return nil
}

// NumSeen returns the number of absorbed samples.
func (inc *Incremental) NumSeen() int { return inc.seen }

// ClassCounts returns a copy of the per-class sample counts.
func (inc *Incremental) ClassCounts() []int {
	return append([]int(nil), inc.counts...)
}

// Model produces the current SRDA model (exactly the batch primal fit on
// everything added so far).  Every class must have at least one sample.
// The call does not consume the accumulated state; streaming can
// continue afterwards.
func (inc *Incremental) Model() (*Model, error) {
	rt, err := ResponsesFromCounts(inc.counts)
	if err != nil {
		return nil, err
	}
	// X̃ᵀY = classSumsᵀ · values  ((n+1)×c · c×(c−1))
	xty := mat.MulTA(inc.classSums, rt.Values)
	wAug := inc.chol.Solve(xty)
	k := wAug.Cols
	model := &Model{
		W:          wAug.Slice(0, inc.n, 0, k).Clone(),
		B:          make([]float64, k),
		NumClasses: inc.c,
		Alpha:      inc.alpha,
		Strategy:   0, // auto/primal semantics
	}
	for j := 0; j < k; j++ {
		model.B[j] = wAug.At(inc.n, j)
	}
	return model, nil
}
