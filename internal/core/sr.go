package core

import (
	"fmt"
	"math"

	"srda/internal/blas"
	"srda/internal/decomp"
	"srda/internal/graph"
	"srda/internal/mat"
	"srda/internal/regress"
	"srda/internal/solver"
)

// SROptions configures generalized Spectral Regression (the paper's
// closing generalization: swap the supervised class graph for any
// affinity graph and keep the regression machinery).
type SROptions struct {
	// Dim is the number of embedding dimensions to extract (for the
	// supervised class graph, c−1 recovers SRDA exactly).
	Dim int
	// Alpha is the ridge penalty of the regression step.
	Alpha float64
	// Strategy selects the regression solver (Auto by default).
	Strategy regress.Strategy
	// LSQRIter and Workers configure the iterative path.
	LSQRIter, Workers int
	// EigTol is the Lanczos convergence tolerance (default 1e-8).
	EigTol float64
	// Seed fixes the eigensolver start vectors.
	Seed int64
}

// FitSRDense runs generalized Spectral Regression on dense data:
//
//  1. Spectral step — the top Dim+1 eigenvectors of the graph's
//     normalized adjacency D^{-1/2}WD^{-1/2} are computed with the
//     deflated Lanczos solver (the +1 covers the trivial all-ones
//     direction, which is then projected out).
//  2. Regression step — each remaining response is ridge-regressed onto
//     the features with the intercept trick, exactly as in SRDA.
//
// With g = graph.ClassGraph(labels, c) and Dim = c−1 this reproduces
// SRDA's subspace; with a k-NN graph it is unsupervised spectral
// embedding made linear; with graph.SemiSupervised it implements
// semi-supervised discriminant analysis.
func FitSRDense(x *mat.Dense, g *graph.Graph, opt SROptions) (*Model, error) {
	if g.Size() != x.Rows {
		return nil, fmt.Errorf("core: graph has %d vertices but data %d rows", g.Size(), x.Rows)
	}
	y, err := srResponses(g, opt)
	if err != nil {
		return nil, err
	}
	rm, err := regress.FitDense(x, y, regress.Options{
		Alpha:     opt.Alpha,
		Strategy:  opt.Strategy,
		Intercept: true,
		LSQRIter:  opt.LSQRIter,
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Model{
		W:          rm.W,
		B:          rm.B,
		NumClasses: opt.Dim + 1,
		Alpha:      opt.Alpha,
		Iters:      rm.Iters,
		Strategy:   rm.Strategy,
	}, nil
}

// FitSROperator is the matrix-free counterpart of FitSRDense (LSQR only).
func FitSROperator(op solver.Operator, g *graph.Graph, opt SROptions) (*Model, error) {
	m, _ := op.Dims()
	if g.Size() != m {
		return nil, fmt.Errorf("core: graph has %d vertices but operator %d rows", g.Size(), m)
	}
	y, err := srResponses(g, opt)
	if err != nil {
		return nil, err
	}
	rm, err := regress.FitOperator(op, y, regress.Options{
		Alpha:     opt.Alpha,
		Intercept: true,
		LSQRIter:  opt.LSQRIter,
		Workers:   opt.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &Model{
		W:          rm.W,
		B:          rm.B,
		NumClasses: opt.Dim + 1,
		Alpha:      opt.Alpha,
		Iters:      rm.Iters,
		Strategy:   rm.Strategy,
	}, nil
}

// srResponses runs the spectral step: eigenvectors of the normalized
// adjacency, mapped back through D^{-1/2}, orthogonalized against the
// all-ones vector (taken first, as in eq. 15–16) and dropped.
func srResponses(g *graph.Graph, opt SROptions) (*mat.Dense, error) {
	if opt.Dim < 1 {
		return nil, fmt.Errorf("core: SR needs Dim >= 1")
	}
	m := g.Size()
	if opt.Dim >= m {
		return nil, fmt.Errorf("core: Dim %d too large for %d samples", opt.Dim, m)
	}
	tol := opt.EigTol
	if tol <= 0 {
		tol = 1e-8
	}
	res, err := solver.LanczosDeflated(g.Normalized(), opt.Dim+1, tol, opt.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("core: spectral step: %w", err)
	}
	k := res.Vectors.Cols

	// Map u → y = D^{-1/2} u (vertices with zero degree stay zero).
	ys := mat.NewDense(m, k)
	col := make([]float64, m)
	for j := 0; j < k; j++ {
		res.Vectors.ColCopy(j, col)
		for i := 0; i < m; i++ {
			if d := g.Degrees[i]; d > 0 {
				col[i] /= math.Sqrt(d)
			} else {
				col[i] = 0
			}
		}
		ys.SetCol(j, col)
	}

	// Ones-first Gram–Schmidt, then drop the ones column and any columns
	// that collapse (e.g. the trivial eigenvector, which is parallel to
	// the ones vector on connected graphs).
	cand := mat.NewDense(m, k+1)
	ones := make([]float64, m)
	for i := range ones {
		ones[i] = 1
	}
	cand.SetCol(0, ones)
	for j := 0; j < k; j++ {
		cand.SetCol(j+1, ys.ColCopy(j, col))
	}
	decomp.GramSchmidt(cand, 1e-8)
	var kept [][]float64
	for j := 1; j < k+1 && len(kept) < opt.Dim; j++ {
		c := cand.ColCopy(j, nil)
		if blas.Nrm2(c) > 0.5 { // GramSchmidt zeroes dependent columns
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("core: spectral step produced no nontrivial responses")
	}
	y := mat.NewDense(m, len(kept))
	for j, c := range kept {
		y.SetCol(j, c)
	}
	return y, nil
}
