package core

import (
	"math"
	"math/rand"
	"testing"

	"srda/internal/mat"
	"srda/internal/regress"
)

// absorbAll streams every row of x into fresh statistics in row order.
func absorbAll(t *testing.T, x *mat.Dense, labels []int, numClasses int) *SuffStats {
	t.Helper()
	s, err := NewSuffStats(x.Cols, numClasses)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < x.Rows; i++ {
		if err := s.Absorb(x.RowView(i), labels[i]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (%#x), want %v (%#x)", name, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestFitStatsBitwiseMatchesBatch is the bridge's core contract: solving
// from sample-by-sample absorbed statistics is Float64bits-identical to
// the batch primal fit — W, B, and centroids — at every worker count.
func TestFitStatsBitwiseMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const m, n, c = 120, 30, 4
	x := mat.NewDense(m, n)
	labels := make([]int, m)
	for i := 0; i < m; i++ {
		labels[i] = i % c
		row := x.RowView(i)
		for j := range row {
			row[j] = rng.NormFloat64() + 0.5*float64(labels[i])
			if rng.Float64() < 0.3 {
				row[j] = 0 // exercise the exact-sparsity skip both sides share
			}
		}
	}
	s := absorbAll(t, x, labels, c)
	for _, w := range []int{1, 2, 4} {
		opt := Options{Alpha: 1, Workers: w}
		stream, err := FitStats(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := FitDense(x, labels, c, Options{Alpha: 1, Strategy: regress.Primal, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "W", stream.W.Data, batch.W.Data)
		bitsEqual(t, "B", stream.B, batch.B)
		if batch.Centroids == nil || stream.Centroids == nil {
			t.Fatal("primal fits must carry stats-based centroids")
		}
		bitsEqual(t, "Centroids", stream.Centroids.Data, batch.Centroids.Data)
	}
}

// TestAbsorbSparseMatchesDense: a CSR-form sample must land bitwise
// identically to its densified twin.
func TestAbsorbSparseMatchesDense(t *testing.T) {
	const n, c = 12, 3
	dense, err := NewSuffStats(n, c)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewSuffStats(n, c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	row := make([]float64, n)
	for i := 0; i < 40; i++ {
		var cols []int
		var vals []float64
		for j := range row {
			row[j] = 0
			if rng.Float64() < 0.4 {
				row[j] = rng.NormFloat64()
				cols = append(cols, j)
				vals = append(vals, row[j])
			}
		}
		lab := i % c
		if err := dense.Absorb(row, lab); err != nil {
			t.Fatal(err)
		}
		if err := sparse.AbsorbSparse(cols, vals, lab); err != nil {
			t.Fatal(err)
		}
	}
	bitsEqual(t, "gram", sparse.gram.Data, dense.gram.Data)
	bitsEqual(t, "classSums", sparse.classSums.Data, dense.classSums.Data)
}

// TestSuffStatsCloneIsolated: mutating a clone must not leak into the
// original (the async-refit isolation guarantee).
func TestSuffStatsCloneIsolated(t *testing.T) {
	const n, c = 5, 2
	s, err := NewSuffStats(n, c)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3, 4, 5}
	if err := s.Absorb(x, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb(x, 1); err != nil {
		t.Fatal(err)
	}
	cl := s.Clone()
	if err := cl.Absorb(x, 1); err != nil {
		t.Fatal(err)
	}
	if s.Seen() != 2 || cl.Seen() != 3 {
		t.Fatalf("seen = %d / %d, want 2 / 3", s.Seen(), cl.Seen())
	}
	if got := s.ClassCounts()[1]; got != 1 {
		t.Fatalf("original counts mutated: %d", got)
	}
	mean := cl.ClassMean(1, nil)
	for j, v := range mean {
		if v != x[j] {
			t.Fatalf("clone class mean[%d] = %v, want %v", j, v, x[j])
		}
	}
}

// TestSuffStatsValidation pins the error paths.
func TestSuffStatsValidation(t *testing.T) {
	if _, err := NewSuffStats(0, 2); err == nil {
		t.Fatal("0 features accepted")
	}
	if _, err := NewSuffStats(3, 1); err == nil {
		t.Fatal("1 class accepted")
	}
	s, err := NewSuffStats(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Absorb([]float64{1, 2}, 0); err == nil {
		t.Fatal("short sample accepted")
	}
	if err := s.Absorb([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if err := s.AbsorbSparse([]int{3}, []float64{1}, 0); err == nil {
		t.Fatal("out-of-range feature index accepted")
	}
	if s.Seen() != 0 {
		t.Fatalf("failed absorptions counted: %d", s.Seen())
	}
	if _, err := FitStats(s, Options{Alpha: 1}); err == nil {
		t.Fatal("empty-class fit accepted")
	}
	if _, err := FitStats(s, Options{Alpha: -1}); err == nil {
		t.Fatal("negative alpha accepted")
	}
}
