package blas

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzGemmShapes drives Gemm and ParGemm over fuzzer-chosen shapes, data
// seeds, scaling factors, and worker counts, cross-checking both against
// the naive triple-loop oracle and asserting the parallel kernel is
// bitwise identical to the sequential one.  The checked-in corpus in
// testdata/fuzz/FuzzGemmShapes seeds the unroll and tile boundaries.
func FuzzGemmShapes(f *testing.F) {
	f.Add(1, 1, 1, int64(1), 1.0, 0.0, 4)
	f.Add(3, 5, 2, int64(2), -0.5, 1.0, 7)
	f.Add(4, 4, 4, int64(3), 1.0, 0.5, 2)
	f.Add(8, 1, 9, int64(4), 2.0, 0.0, 3)
	f.Add(17, 33, 65, int64(5), 1.0, 1.0, 5)
	f.Add(96, 2, 97, int64(6), 0.25, 0.0, 6)
	f.Fuzz(func(t *testing.T, m, n, k int, seed int64, alpha, beta float64, workers int) {
		const maxDim = 48
		if m < 0 || n < 0 || k < 0 || m > maxDim || n > maxDim || k > maxDim {
			t.Skip()
		}
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
			t.Skip()
		}
		if workers < 0 || workers > 16 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		a, b := randVec(rng, m*k), randVec(rng, k*n)
		c0 := randVec(rng, m*n)

		// Oracle: naive triple loop plus explicit alpha/beta handling.
		want := make([]float64, m*n)
		prod := naiveGemm(m, n, k, a, b)
		for i := range want {
			want[i] = alpha*prod[i] + beta*c0[i]
		}

		got := append([]float64(nil), c0...)
		Gemm(m, n, k, alpha, a, k, b, n, beta, got, n)
		scale := 1.0 + math.Abs(alpha)*float64(k) + math.Abs(beta)
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > 1e-9*scale {
				t.Fatalf("Gemm m=%d n=%d k=%d alpha=%v beta=%v: element %d = %v, oracle %v",
					m, n, k, alpha, beta, i, got[i], want[i])
			}
		}

		par := append([]float64(nil), c0...)
		ParGemm(workers, m, n, k, alpha, a, k, b, n, beta, par, n)
		for i := range got {
			if math.Float64bits(par[i]) != math.Float64bits(got[i]) {
				t.Fatalf("ParGemm(workers=%d) m=%d n=%d k=%d: element %d = %v, sequential %v",
					workers, m, n, k, i, par[i], got[i])
			}
		}
	})
}
