package blas

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// eqWorkers are the shard counts the determinism contract is enforced at:
// sequential, even splits, and a prime that never divides the test shapes
// evenly.  Worker counts above GOMAXPROCS are deliberate — sharding is
// independent of true concurrency.
var eqWorkers = []int{1, 2, 4, 7}

// eqShapes draws (m, n, k) triples from the contract set {0, 1, 3, 64,
// 65, 1000}: the full cross product of the small values plus ragged
// triples that put 1000 in each position (capped so the race-detector run
// stays fast).  64 and 65 straddle the Axpy/Dot unroll width; 65 and 1000
// are not multiples of the 96-wide cache tile.
func eqShapes() [][3]int {
	small := []int{0, 1, 3, 64, 65}
	var shapes [][3]int
	for _, m := range small {
		for _, n := range small {
			for _, k := range small {
				shapes = append(shapes, [3]int{m, n, k})
			}
		}
	}
	shapes = append(shapes,
		[3]int{1000, 3, 65}, [3]int{3, 1000, 65}, [3]int{65, 3, 1000},
		[3]int{1000, 1000, 1}, [3]int{1000, 1, 1000}, [3]int{1, 1000, 1000},
		[3]int{1000, 64, 64}, [3]int{64, 1000, 64}, [3]int{64, 64, 1000},
	)
	return shapes
}

// bitsEqual reports exact bit-level equality, the contract the Par*
// kernels promise (tolerances would hide reassociated accumulations).
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// betaFor cycles the beta values so every kernel is exercised with
// overwrite (0), accumulate (1), and scale-accumulate semantics.
func betaFor(idx int) float64 { return []float64{0, 1, 0.5}[idx%3] }

func TestParGemmBitwiseEqualsGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for si, d := range eqShapes() {
		m, n, k := d[0], d[1], d[2]
		a, b := randVec(rng, m*k), randVec(rng, k*n)
		c0 := randVec(rng, m*n)
		beta := betaFor(si)
		want := append([]float64(nil), c0...)
		Gemm(m, n, k, 1.25, a, k, b, n, beta, want, n)
		for _, w := range eqWorkers {
			got := append([]float64(nil), c0...)
			ParGemm(w, m, n, k, 1.25, a, k, b, n, beta, got, n)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("ParGemm(workers=%d) m=%d n=%d k=%d beta=%v: element %d = %v, sequential %v",
					w, m, n, k, beta, i, got[i], want[i])
			}
		}
	}
}

func TestParGemmTABitwiseEqualsGemmTA(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for si, d := range eqShapes() {
		m, n, k := d[0], d[1], d[2]
		a, b := randVec(rng, k*m), randVec(rng, k*n) // A is k×m
		c0 := randVec(rng, m*n)
		beta := betaFor(si)
		want := append([]float64(nil), c0...)
		GemmTA(m, n, k, 0.75, a, m, b, n, beta, want, n)
		for _, w := range eqWorkers {
			got := append([]float64(nil), c0...)
			ParGemmTA(w, m, n, k, 0.75, a, m, b, n, beta, got, n)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("ParGemmTA(workers=%d) m=%d n=%d k=%d beta=%v: element %d = %v, sequential %v",
					w, m, n, k, beta, i, got[i], want[i])
			}
		}
	}
}

func TestParGemmTBBitwiseEqualsGemmTB(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for si, d := range eqShapes() {
		m, n, k := d[0], d[1], d[2]
		a, b := randVec(rng, m*k), randVec(rng, n*k) // B is n×k
		c0 := randVec(rng, m*n)
		beta := betaFor(si)
		want := append([]float64(nil), c0...)
		GemmTB(m, n, k, -1.5, a, k, b, k, beta, want, n)
		for _, w := range eqWorkers {
			got := append([]float64(nil), c0...)
			ParGemmTB(w, m, n, k, -1.5, a, k, b, k, beta, got, n)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("ParGemmTB(workers=%d) m=%d n=%d k=%d beta=%v: element %d = %v, sequential %v",
					w, m, n, k, beta, i, got[i], want[i])
			}
		}
	}
}

func TestParGemvBitwiseEqualsGemv(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for si, d := range eqShapes() {
		m, n := d[0], d[1]
		a, x := randVec(rng, m*n), randVec(rng, n)
		y0 := randVec(rng, m)
		beta := betaFor(si)
		want := append([]float64(nil), y0...)
		Gemv(m, n, 2.5, a, n, x, beta, want)
		for _, w := range eqWorkers {
			got := append([]float64(nil), y0...)
			ParGemv(w, m, n, 2.5, a, n, x, beta, got)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("ParGemv(workers=%d) m=%d n=%d beta=%v: element %d = %v, sequential %v",
					w, m, n, beta, i, got[i], want[i])
			}
		}
	}
}

func TestParGemvTBitwiseEqualsGemvT(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for si, d := range eqShapes() {
		m, n := d[0], d[1]
		a, x := randVec(rng, m*n), randVec(rng, m)
		y0 := randVec(rng, n)
		beta := betaFor(si)
		want := append([]float64(nil), y0...)
		GemvT(m, n, -0.5, a, n, x, beta, want)
		for _, w := range eqWorkers {
			got := append([]float64(nil), y0...)
			ParGemvT(w, m, n, -0.5, a, n, x, beta, got)
			if i, ok := bitsEqual(got, want); !ok {
				t.Fatalf("ParGemvT(workers=%d) m=%d n=%d beta=%v: element %d = %v, sequential %v",
					w, m, n, beta, i, got[i], want[i])
			}
		}
	}
}

// TestParGemmStridedViews repeats the sequential strided-view test through
// the parallel wrapper: sub-matrix views (lda > n) must shard correctly.
func TestParGemmStridedViews(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	m, n, k, pad := 130, 70, 50, 5
	a := randVec(rng, m*(k+pad))
	b := randVec(rng, k*(n+pad))
	want := make([]float64, m*(n+pad))
	got := append([]float64(nil), want...)
	Gemm(m, n, k, 1, a, k+pad, b, n+pad, 0, want, n+pad)
	ParGemm(7, m, n, k, 1, a, k+pad, b, n+pad, 0, got, n+pad)
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("strided ParGemm differs at %d: %v vs %v", i, got[i], want[i])
	}
}

func TestParGemmPanicsOnBadLda(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lda < k")
		}
	}()
	ParGemm(2, 4, 4, 4, 1, make([]float64, 16), 2, make([]float64, 16), 4, 0, make([]float64, 16), 4)
}

// BenchmarkParGemm measures the 1000×1000×1000 product across worker
// counts; at GOMAXPROCS >= 4 the 4-worker case should be >= 2x the
// 1-worker case (and bitwise identical, per the tests above).
func BenchmarkParGemm(b *testing.B) {
	rng := rand.New(rand.NewSource(47))
	const dim = 1000
	a, bb := randVec(rng, dim*dim), randVec(rng, dim*dim)
	c := make([]float64, dim*dim)
	for _, w := range []int{1, 2, 4, 8, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.SetBytes(3 * 8 * dim * dim)
			for i := 0; i < b.N; i++ {
				ParGemm(w, dim, dim, dim, 1, a, dim, bb, dim, 0, c, dim)
			}
		})
	}
}

// BenchmarkParGemvT measures the transposed mat-vec (the LSQR ApplyT hot
// path) across worker counts.
func BenchmarkParGemvT(b *testing.B) {
	rng := rand.New(rand.NewSource(48))
	m, n := 2000, 2000
	a, x := randVec(rng, m*n), randVec(rng, m)
	y := make([]float64, n)
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ParGemvT(w, m, n, 1, a, n, x, 0, y)
			}
		})
	}
}
