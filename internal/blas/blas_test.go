package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-10

func almostEqual(a, b, eps float64) bool {
	diff := math.Abs(a - b)
	if diff <= eps {
		return true
	}
	return diff <= eps*math.Max(math.Abs(a), math.Abs(b))
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func naiveDot(x, y []float64) float64 {
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func TestDotMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 17, 100, 1023} {
		x, y := randVec(rng, n), randVec(rng, n)
		if got, want := Dot(x, y), naiveDot(x, y); !almostEqual(got, want, tol) {
			t.Errorf("n=%d: Dot=%v want %v", n, got, want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched lengths")
		}
	}()
	Dot(make([]float64, 3), make([]float64, 4))
}

func TestAxpy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 4, 9, 250} {
		x, y := randVec(rng, n), randVec(rng, n)
		want := make([]float64, n)
		for i := range want {
			want[i] = y[i] + 2.5*x[i]
		}
		Axpy(2.5, x, y)
		for i := range y {
			if !almostEqual(y[i], want[i], tol) {
				t.Fatalf("n=%d i=%d: got %v want %v", n, i, y[i], want[i])
			}
		}
	}
}

func TestAxpyZeroAlphaIsNoop(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 5, 6}
	Axpy(0, x, y)
	for i, want := range []float64{4, 5, 6} {
		if y[i] != want {
			t.Fatalf("y[%d]=%v want %v", i, y[i], want)
		}
	}
}

func TestScal(t *testing.T) {
	x := []float64{1, -2, 3}
	Scal(-2, x)
	want := []float64{-2, 4, -6}
	for i := range x {
		if x[i] != want[i] {
			t.Fatalf("x[%d]=%v want %v", i, x[i], want[i])
		}
	}
}

func TestNrm2(t *testing.T) {
	if got := Nrm2([]float64{3, 4}); !almostEqual(got, 5, tol) {
		t.Errorf("Nrm2(3,4)=%v want 5", got)
	}
	if got := Nrm2(nil); got != 0 {
		t.Errorf("Nrm2(nil)=%v want 0", got)
	}
	if got := Nrm2([]float64{0, 0}); got != 0 {
		t.Errorf("Nrm2(0,0)=%v want 0", got)
	}
}

func TestNrm2AvoidsOverflow(t *testing.T) {
	big := math.MaxFloat64 / 2
	got := Nrm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || !almostEqual(got, want, 1e-12) {
		t.Errorf("Nrm2 overflow-prone: got %v want %v", got, want)
	}
	tiny := math.SmallestNonzeroFloat64 * 4
	if got := Nrm2([]float64{tiny, tiny}); got == 0 {
		t.Errorf("Nrm2 underflowed to 0 for tiny inputs")
	}
}

func TestNrm2PropertyScaling(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				v = 1
			}
			x[i] = v
		}
		s := math.Mod(math.Abs(scale), 10) + 0.5
		scaled := make([]float64, len(x))
		for i := range x {
			scaled[i] = s * x[i]
		}
		return almostEqual(Nrm2(scaled), s*Nrm2(x), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAsumIamax(t *testing.T) {
	x := []float64{1, -5, 3}
	if got := Asum(x); got != 9 {
		t.Errorf("Asum=%v want 9", got)
	}
	if got := Iamax(x); got != 1 {
		t.Errorf("Iamax=%v want 1", got)
	}
	if got := Iamax(nil); got != -1 {
		t.Errorf("Iamax(nil)=%v want -1", got)
	}
}

func naiveGemm(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func TestGemvMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {5, 3}, {17, 33}, {64, 64}} {
		m, n := dims[0], dims[1]
		a, x := randVec(rng, m*n), randVec(rng, n)
		y := make([]float64, m)
		Gemv(m, n, 1, a, n, x, 0, y)
		want := naiveGemm(m, 1, n, a, x)
		for i := range y {
			if !almostEqual(y[i], want[i], 1e-9) {
				t.Fatalf("m=%d n=%d i=%d: %v vs %v", m, n, i, y[i], want[i])
			}
		}
	}
}

func TestGemvAlphaBeta(t *testing.T) {
	a := []float64{1, 2, 3, 4} // 2x2
	x := []float64{1, 1}
	y := []float64{10, 20}
	Gemv(2, 2, 2, a, 2, x, 3, y) // y = 2*A*x + 3*y
	if y[0] != 2*3+30 || y[1] != 2*7+60 {
		t.Fatalf("got %v", y)
	}
}

func TestGemvTMatchesExplicitTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 23, 11
	a := randVec(rng, m*n)
	x := randVec(rng, m)
	y := make([]float64, n)
	GemvT(m, n, 1, a, n, x, 0, y)
	// explicit transpose reference
	at := make([]float64, n*m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			at[j*m+i] = a[i*n+j]
		}
	}
	want := make([]float64, n)
	Gemv(n, m, 1, at, m, x, 0, want)
	for j := range y {
		if !almostEqual(y[j], want[j], 1e-9) {
			t.Fatalf("j=%d: %v vs %v", j, y[j], want[j])
		}
	}
}

func TestGer(t *testing.T) {
	a := make([]float64, 6) // 2x3
	Ger(2, 3, 2, []float64{1, 2}, []float64{3, 4, 5}, a, 3)
	want := []float64{6, 8, 10, 12, 16, 20}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("a=%v want %v", a, want)
		}
	}
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {100, 97, 103}, {129, 64, 200}} {
		m, n, k := d[0], d[1], d[2]
		a, b := randVec(rng, m*k), randVec(rng, k*n)
		c := make([]float64, m*n)
		Gemm(m, n, k, 1, a, k, b, n, 0, c, n)
		want := naiveGemm(m, n, k, a, b)
		for i := range c {
			if !almostEqual(c[i], want[i], 1e-8) {
				t.Fatalf("dims=%v i=%d: %v vs %v", d, i, c[i], want[i])
			}
		}
	}
}

func TestGemmBetaAccumulate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n, k := 13, 9, 7
	a, b := randVec(rng, m*k), randVec(rng, k*n)
	c := randVec(rng, m*n)
	want := naiveGemm(m, n, k, a, b)
	for i := range want {
		want[i] = 0.5*want[i] + 2*c[i]
	}
	Gemm(m, n, k, 0.5, a, k, b, n, 2, c, n)
	for i := range c {
		if !almostEqual(c[i], want[i], 1e-8) {
			t.Fatalf("i=%d: %v vs %v", i, c[i], want[i])
		}
	}
}

func TestGemmTAMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range [][3]int{{3, 4, 5}, {50, 40, 120}, {97, 101, 64}} {
		m, n, k := d[0], d[1], d[2]
		a := randVec(rng, k*m) // A is k×m
		b := randVec(rng, k*n)
		c := make([]float64, m*n)
		GemmTA(m, n, k, 1, a, m, b, n, 0, c, n)
		// naive: C[i][j] = sum_p A[p][i]*B[p][j]
		want := make([]float64, m*n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for p := 0; p < k; p++ {
					s += a[p*m+i] * b[p*n+j]
				}
				want[i*n+j] = s
			}
		}
		for i := range c {
			if !almostEqual(c[i], want[i], 1e-8) {
				t.Fatalf("dims=%v i=%d: %v vs %v", d, i, c[i], want[i])
			}
		}
	}
}

func TestGemmTBMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n, k := 31, 17, 23
	a := randVec(rng, m*k)
	b := randVec(rng, n*k) // B is n×k
	c := make([]float64, m*n)
	GemmTB(m, n, k, 1, a, k, b, k, 0, c, n)
	want := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[j*k+p]
			}
			want[i*n+j] = s
		}
	}
	for i := range c {
		if !almostEqual(c[i], want[i], 1e-8) {
			t.Fatalf("i=%d: %v vs %v", i, c[i], want[i])
		}
	}
}

func TestGemmStridedViews(t *testing.T) {
	// Multiply 2x2 blocks embedded in larger matrices with lda > n.
	a := []float64{
		1, 2, 99,
		3, 4, 99,
	}
	b := []float64{
		5, 6, 88,
		7, 8, 88,
	}
	c := make([]float64, 2*4)
	Gemm(2, 2, 2, 1, a, 3, b, 3, 0, c, 4)
	// only the 2x2 leading block of each row of C is written
	if c[0] != 19 || c[1] != 22 || c[4] != 43 || c[5] != 50 {
		t.Fatalf("c=%v", c)
	}
}

func TestGemmAssociativityProperty(t *testing.T) {
	// (A*B)*x == A*(B*x) for random small matrices.
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 2+r.Intn(10), 2+r.Intn(10), 2+r.Intn(10)
		a, b, x := randVec(rng, m*k), randVec(rng, k*n), randVec(rng, n)
		ab := make([]float64, m*n)
		Gemm(m, n, k, 1, a, k, b, n, 0, ab, n)
		lhs := make([]float64, m)
		Gemv(m, n, 1, ab, n, x, 0, lhs)
		bx := make([]float64, k)
		Gemv(k, n, 1, b, n, x, 0, bx)
		rhs := make([]float64, m)
		Gemv(m, k, 1, a, k, bx, 0, rhs)
		for i := range lhs {
			if !almostEqual(lhs[i], rhs[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkGemm256(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	n := 256
	a, bb := randVec(rng, n*n), randVec(rng, n*n)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(n, n, n, 1, a, n, bb, n, 0, c, n)
	}
}

func BenchmarkDot4096(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x, y := randVec(rng, 4096), randVec(rng, 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dot(x, y)
	}
}

func TestCopy(t *testing.T) {
	src := []float64{1, 2, 3}
	dst := make([]float64, 3)
	Copy(dst, src)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatal("Copy failed")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch accepted")
		}
	}()
	Copy(dst, []float64{1})
}
