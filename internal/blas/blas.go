// Package blas provides the low-level dense linear-algebra kernels used by
// every other package in this repository: level-1 vector operations (dot,
// axpy, scal, nrm2), level-2 matrix-vector products, and a blocked level-3
// matrix-matrix product.
//
// All matrices are float64 and stored row-major with an explicit leading
// dimension (stride), which lets callers pass sub-matrix views without
// copying.  The kernels are written with 4-way manual unrolling; on the
// matrix sizes this project cares about (hundreds to tens of thousands of
// rows/columns) that is within a small factor of what a tuned BLAS would
// deliver while staying pure, dependency-free Go.
package blas

import "math"

// Dot returns the inner product x·y of two equal-length vectors.
// It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("blas: vector length mismatch in Dot")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	s := s0 + s1 + s2 + s3
	for ; i < len(x); i++ {
		s += x[i] * y[i]
	}
	return s
}

// Axpy computes y += alpha*x elementwise.
// It panics if the lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("blas: vector length mismatch in Axpy")
	}
	if alpha == 0 { //srdalint:ignore floatcmp exact zero alpha is the documented no-op fast path
		return
	}
	i := 0
	for ; i+3 < len(x); i += 4 {
		y[i] += alpha * x[i]
		y[i+1] += alpha * x[i+1]
		y[i+2] += alpha * x[i+2]
		y[i+3] += alpha * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// Scal scales x in place by alpha.
func Scal(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Nrm2 returns the Euclidean norm of x, computed with scaling so that it
// neither overflows nor underflows for extreme magnitudes.
func Nrm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		if v == 0 { //srdalint:ignore floatcmp exact zero skip keeps the scaled-ssq update well-defined
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	if scale == 0 { //srdalint:ignore floatcmp an all-zero vector has exact norm 0
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// Asum returns the sum of absolute values of x.
func Asum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Iamax returns the index of the element of x with the largest absolute
// value, or -1 for an empty vector.
func Iamax(x []float64) int {
	best, at := -1.0, -1
	for i, v := range x {
		if a := math.Abs(v); a > best {
			best, at = a, i
		}
	}
	return at
}

// Copy copies src into dst.  It panics if the lengths differ.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic("blas: vector length mismatch in Copy")
	}
	copy(dst, src)
}

// Gemv computes y = alpha*A*x + beta*y where A is m×n row-major with
// leading dimension lda (lda >= n).
func Gemv(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if len(x) < n || len(y) < m {
		panic("blas: vector too short in Gemv")
	}
	if lda < n {
		panic("blas: lda < n in Gemv")
	}
	for i := 0; i < m; i++ {
		row := a[i*lda : i*lda+n]
		s := Dot(row, x[:n])
		if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
			y[i] = alpha * s
		} else {
			y[i] = alpha*s + beta*y[i]
		}
	}
}

// GemvT computes y = alpha*Aᵀ*x + beta*y where A is m×n row-major with
// leading dimension lda, so y has length n and x has length m.  The loop
// runs over rows of A (unit-stride access) accumulating into y.
func GemvT(m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if len(x) < m || len(y) < n {
		panic("blas: vector too short in GemvT")
	}
	if lda < n {
		panic("blas: lda < n in GemvT")
	}
	if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
		for j := 0; j < n; j++ {
			y[j] = 0
		}
	} else if beta != 1 { //srdalint:ignore floatcmp exact beta==1 skips the scaling pass bit-exactly
		Scal(beta, y[:n])
	}
	for i := 0; i < m; i++ {
		Axpy(alpha*x[i], a[i*lda:i*lda+n], y[:n])
	}
}

// Ger performs the rank-one update A += alpha * x * yᵀ on the m×n row-major
// matrix A with leading dimension lda.
func Ger(m, n int, alpha float64, x, y []float64, a []float64, lda int) {
	if len(x) < m || len(y) < n {
		panic("blas: vector too short in Ger")
	}
	for i := 0; i < m; i++ {
		Axpy(alpha*x[i], y[:n], a[i*lda:i*lda+n])
	}
}

// gemmBlock is the cache-blocking tile edge for Gemm.  96×96 float64 tiles
// of A, B and C together occupy ~216 KiB, sized to sit in L2.
const gemmBlock = 96

// Gemm computes C = alpha*A*B + beta*C for row-major matrices:
// A is m×k (leading dim lda), B is k×n (ldb), C is m×n (ldc).
// The kernel is blocked i-k-j with an axpy inner loop, which keeps both B
// and C rows unit-stride.
func Gemm(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < k || ldb < n || ldc < n {
		panic("blas: bad leading dimension in Gemm")
	}
	if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			for j := range row {
				row[j] = 0
			}
		}
	} else if beta != 1 { //srdalint:ignore floatcmp exact beta==1 skips the scaling pass bit-exactly
		for i := 0; i < m; i++ {
			Scal(beta, c[i*ldc:i*ldc+n])
		}
	}
	if alpha == 0 || m == 0 || n == 0 || k == 0 { //srdalint:ignore floatcmp exact zero alpha is the documented no-op fast path
		return
	}
	for ii := 0; ii < m; ii += gemmBlock {
		iMax := min(ii+gemmBlock, m)
		for kk := 0; kk < k; kk += gemmBlock {
			kMax := min(kk+gemmBlock, k)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for i := ii; i < iMax; i++ {
					crow := c[i*ldc+jj : i*ldc+jMax]
					arow := a[i*lda:]
					for p := kk; p < kMax; p++ {
						av := alpha * arow[p]
						if av == 0 { //srdalint:ignore floatcmp exact-zero axpy skip; sequential and Par twins share this guard
							continue
						}
						Axpy(av, b[p*ldb+jj:p*ldb+jMax], crow)
					}
				}
			}
		}
	}
}

// GemmTA computes C = alpha*Aᵀ*B + beta*C where A is k×m (lda), B is k×n
// (ldb) and C is m×n (ldc).  This is the kernel behind Gram matrices
// (XᵀX) and cross-products (Xᵀy) without materializing the transpose.
func GemmTA(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < m || ldb < n || ldc < n {
		panic("blas: bad leading dimension in GemmTA")
	}
	if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
		for i := 0; i < m; i++ {
			row := c[i*ldc : i*ldc+n]
			for j := range row {
				row[j] = 0
			}
		}
	} else if beta != 1 { //srdalint:ignore floatcmp exact beta==1 skips the scaling pass bit-exactly
		for i := 0; i < m; i++ {
			Scal(beta, c[i*ldc:i*ldc+n])
		}
	}
	if alpha == 0 { //srdalint:ignore floatcmp exact zero alpha is the documented no-op fast path
		return
	}
	// C[i][j] += alpha * sum_p A[p][i]*B[p][j]: iterate p outermost so both
	// A and B rows are walked unit-stride; each p contributes a rank-one
	// update restricted to the current tile.
	for pp := 0; pp < k; pp += gemmBlock {
		pMax := min(pp+gemmBlock, k)
		for ii := 0; ii < m; ii += gemmBlock {
			iMax := min(ii+gemmBlock, m)
			for jj := 0; jj < n; jj += gemmBlock {
				jMax := min(jj+gemmBlock, n)
				for p := pp; p < pMax; p++ {
					arow := a[p*lda:]
					brow := b[p*ldb+jj : p*ldb+jMax]
					for i := ii; i < iMax; i++ {
						av := alpha * arow[i]
						if av == 0 { //srdalint:ignore floatcmp exact-zero axpy skip; sequential and Par twins share this guard
							continue
						}
						Axpy(av, brow, c[i*ldc+jj:i*ldc+jMax])
					}
				}
			}
		}
	}
}

// GemmTB computes C = alpha*A*Bᵀ + beta*C where A is m×k (lda), B is n×k
// (ldb) and C is m×n (ldc).  Each C entry is a dot product of two rows, so
// every access is unit-stride.
func GemmTB(m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < k || ldb < k || ldc < n {
		panic("blas: bad leading dimension in GemmTB")
	}
	for i := 0; i < m; i++ {
		arow := a[i*lda : i*lda+k]
		crow := c[i*ldc : i*ldc+n]
		j := 0
		// Four outputs per pass over arow: one load of a[i][t] feeds four
		// accumulator chains, quartering the A traffic versus j separate
		// dots and keeping four independent FMA chains in flight.
		for ; j+3 < n; j += 4 {
			s0, s1, s2, s3 := dot4(arow,
				b[j*ldb:j*ldb+k], b[(j+1)*ldb:(j+1)*ldb+k],
				b[(j+2)*ldb:(j+2)*ldb+k], b[(j+3)*ldb:(j+3)*ldb+k])
			if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
				crow[j] = alpha * s0
				crow[j+1] = alpha * s1
				crow[j+2] = alpha * s2
				crow[j+3] = alpha * s3
			} else {
				crow[j] = alpha*s0 + beta*crow[j]
				crow[j+1] = alpha*s1 + beta*crow[j+1]
				crow[j+2] = alpha*s2 + beta*crow[j+2]
				crow[j+3] = alpha*s3 + beta*crow[j+3]
			}
		}
		for ; j < n; j++ {
			s := Dot(arow, b[j*ldb:j*ldb+k])
			if beta == 0 { //srdalint:ignore floatcmp BLAS beta==0 means overwrite, not scale; bit-exact by contract
				crow[j] = alpha * s
			} else {
				crow[j] = alpha*s + beta*crow[j]
			}
		}
	}
}

// dot4 computes the dot of x against four equal-length vectors in a
// single pass over x.
func dot4(x, y0, y1, y2, y3 []float64) (s0, s1, s2, s3 float64) {
	if len(y0) != len(x) || len(y1) != len(x) || len(y2) != len(x) || len(y3) != len(x) {
		panic("blas: vector length mismatch in dot4")
	}
	for i, xv := range x {
		s0 += xv * y0[i]
		s1 += xv * y1[i]
		s2 += xv * y2[i]
		s3 += xv * y3[i]
	}
	return
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
