package blas

// This file adds parallel twins of the level-2/3 kernels.  Each Par*
// kernel shards only over independent output rows (or, for the transposed
// products, output columns) and runs the unmodified sequential kernel on
// each shard, so every output element is produced by exactly the same
// sequence of floating-point operations as the sequential call.  Results
// are therefore bitwise identical to the sequential kernels for every
// worker count — the property the equivalence suite in par_test.go
// asserts — which is what lets the rest of the system turn parallelism on
// and off freely without perturbing a single bit of any model.
//
// The sharding argument `workers` bounds the number of spans: <= 0 means
// GOMAXPROCS, 1 forces the sequential kernel.  Spans execute on the
// process-wide pool in internal/pool; calls whose arithmetic volume is
// below parMinFlops stay sequential because the handoff would cost more
// than it saves.

import "srda/internal/pool"

// parMinFlops is the approximate multiply-add count below which the Par*
// wrappers run sequentially.  A shard handoff costs on the order of a
// microsecond; 32Ki flops is roughly the volume that amortizes it.
const parMinFlops = 1 << 15

// ParGemm computes C = alpha*A*B + beta*C exactly like Gemm, sharding
// rows of C (and A) across the worker pool.  Row i of C depends only on
// row i of A and all of B, so per-row arithmetic is untouched by the
// sharding and the result is bitwise identical to Gemm for any workers.
func ParGemm(workers, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < k || ldb < n || ldc < n {
		panic("blas: bad leading dimension in ParGemm")
	}
	if workers == 1 || m < 2 || m*n*k < parMinFlops {
		Gemm(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	pool.Do(workers, m, func(lo, hi int) {
		Gemm(hi-lo, n, k, alpha, a[lo*lda:], lda, b, ldb, beta, c[lo*ldc:], ldc)
	})
}

// ParGemmTA computes C = alpha*Aᵀ*B + beta*C exactly like GemmTA,
// sharding rows of C — which are columns of the k×m matrix A, reached by
// offsetting A's row base — across the worker pool.  For a fixed output
// row, GemmTA's (p-block, j-block, p) update order is independent of how
// the i range is tiled, so shard boundaries cannot reorder any output
// element's accumulation and the result is bitwise identical to GemmTA.
func ParGemmTA(workers, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < m || ldb < n || ldc < n {
		panic("blas: bad leading dimension in ParGemmTA")
	}
	if workers == 1 || m < 2 || m*n*k < parMinFlops {
		GemmTA(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	pool.Do(workers, m, func(lo, hi int) {
		GemmTA(hi-lo, n, k, alpha, a[lo:], lda, b, ldb, beta, c[lo*ldc:], ldc)
	})
}

// ParGemmTB computes C = alpha*A*Bᵀ + beta*C exactly like GemmTB,
// sharding rows of C (and A); each output row is a set of row-row dot
// products untouched by the sharding, so the result is bitwise identical
// to GemmTB.
func ParGemmTB(workers, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	if lda < k || ldb < k || ldc < n {
		panic("blas: bad leading dimension in ParGemmTB")
	}
	if workers == 1 || m < 2 || m*n*k < parMinFlops {
		GemmTB(m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
		return
	}
	pool.Do(workers, m, func(lo, hi int) {
		GemmTB(hi-lo, n, k, alpha, a[lo*lda:], lda, b, ldb, beta, c[lo*ldc:], ldc)
	})
}

// ParGemv computes y = alpha*A*x + beta*y exactly like Gemv, sharding
// output rows; each y[i] is one row dot product, so the result is bitwise
// identical to Gemv.
func ParGemv(workers, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if len(x) < n || len(y) < m {
		panic("blas: vector too short in ParGemv")
	}
	if lda < n {
		panic("blas: lda < n in ParGemv")
	}
	if workers == 1 || m < 2 || m*n < parMinFlops {
		Gemv(m, n, alpha, a, lda, x, beta, y)
		return
	}
	pool.Do(workers, m, func(lo, hi int) {
		Gemv(hi-lo, n, alpha, a[lo*lda:], lda, x, beta, y[lo:])
	})
}

// ParGemvT computes y = alpha*Aᵀ*x + beta*y exactly like GemvT, sharding
// the output columns: each span runs GemvT on the column window [lo, hi)
// of A (reached by offsetting the row base) and the matching window of y.
// For a fixed output element y[j] the accumulation still walks rows of A
// in ascending order with identical per-element arithmetic, so the result
// is bitwise identical to GemvT.
func ParGemvT(workers, m, n int, alpha float64, a []float64, lda int, x []float64, beta float64, y []float64) {
	if len(x) < m || len(y) < n {
		panic("blas: vector too short in ParGemvT")
	}
	if lda < n {
		panic("blas: lda < n in ParGemvT")
	}
	if workers == 1 || n < 2 || m*n < parMinFlops {
		GemvT(m, n, alpha, a, lda, x, beta, y)
		return
	}
	pool.Do(workers, n, func(lo, hi int) {
		GemvT(m, hi-lo, alpha, a[lo:], lda, x, beta, y[lo:])
	})
}
