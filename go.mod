module srda

go 1.22
