package srda

import (
	"io"

	"srda/internal/core"
	"srda/internal/mat"
	"srda/internal/obs"
	"srda/internal/regress"
	"srda/internal/solver"
	"srda/internal/sparse"
)

// Dense is a row-major dense matrix; rows are samples.
type Dense = mat.Dense

// CSR is a compressed-sparse-row matrix; rows are samples.
type CSR = sparse.CSR

// CSRBuilder accumulates (row, col, value) triplets into a CSR matrix.
type CSRBuilder = sparse.Builder

// NewDense allocates a zeroed rows×cols dense matrix.
func NewDense(rows, cols int) *Dense { return mat.NewDense(rows, cols) }

// NewDenseData wraps a row-major slice (length rows*cols) without copying.
func NewDenseData(rows, cols int, data []float64) *Dense {
	return mat.NewDenseData(rows, cols, data)
}

// FromRows builds a dense matrix whose rows copy the given equal-length
// slices.
func FromRows(rows [][]float64) *Dense { return mat.FromRows(rows) }

// NewCSRBuilder creates a builder for a rows×cols sparse matrix.
func NewCSRBuilder(rows, cols int) *CSRBuilder { return sparse.NewBuilder(rows, cols) }

// Solver selects how SRDA's ridge regressions are solved.
type Solver = regress.Strategy

// Solver choices.  Auto follows the paper's protocol: the closed-form
// normal equations (primal for n ≤ m, dual for n > m) on dense data and
// LSQR on sparse data.
const (
	SolverAuto   Solver = regress.Auto
	SolverPrimal Solver = regress.Primal
	SolverDual   Solver = regress.Dual
	SolverLSQR   Solver = regress.IterLSQR
)

// Options configures SRDA training.
type Options struct {
	// Alpha is the Tikhonov/ridge penalty α of the paper's eq. (14).
	// The paper's experiments use 1.  With α→0 and linearly independent
	// samples the solution coincides with classical LDA (Corollary 3).
	Alpha float64
	// Solver picks the regression strategy; SolverAuto when zero.
	Solver Solver
	// LSQRIter caps LSQR iterations per response (default 30; the paper
	// finds 15–20 sufficient).
	LSQRIter int
	// Workers bounds all training parallelism: the independent
	// per-response LSQR solves and the worker-pool sharding inside the
	// dense/sparse kernels of every solver (0 = all CPUs, 1 = fully
	// sequential).  Any setting yields a bitwise-identical model — the
	// kernels shard only over independent output rows (see
	// internal/pool) — so Workers is purely a speed knob.  The trained
	// model reuses the value for its batch projection kernels.
	Workers int
	// Whiten post-scales the model so the training embedding's
	// within-class scatter is (shrinkage-regularized) identity, making
	// Euclidean distances in the embedding behave like the within-class
	// Mahalanobis metric.  Recommended (and used by the experiment
	// harness) whenever the embedding feeds a distance-based classifier;
	// leave false to get the paper's raw regression directions.
	Whiten bool
	// Trace, when non-nil, collects per-phase wall-time spans of the fit
	// ("responses", then the solver phases — "gram"/"xty"/"cholesky"/
	// "solve" for the direct paths or "lsqr" for the iterative one, and
	// "whiten" when enabled).  Training code never reads the clock itself;
	// all timing flows through the trace.  Create one with NewTrace and
	// read it back with Trace.Spans or Trace.Seconds.
	Trace *Trace
}

// Trace collects named wall-time spans; see Options.Trace.
type Trace = obs.Trace

// NewTrace creates an empty trace using the system clock.
func NewTrace() *Trace { return obs.NewTrace() }

// SolverStats is the per-fit solver telemetry stored in Model.Stats:
// which strategy ran, and for LSQR the per-response iteration counts and
// final residual norms.
type SolverStats = regress.Stats

// Model is a trained SRDA transformer mapping samples to the
// (c−1)-dimensional discriminant subspace.  Beyond the per-sample
// Predict*/Transform* methods it exposes the batched serving path —
// ProjectBatch / ProjectBatchCSR / PredictBatch / PredictBatchCSR — which
// lowers per-row matrix-vector loops into single GEMM calls; srdaserve's
// micro-batcher and the BenchmarkPredictBatch trajectory ride on it.
type Model = core.Model

func (o Options) toCore() core.Options {
	return core.Options{Alpha: o.Alpha, Strategy: o.Solver, LSQRIter: o.LSQRIter, Workers: o.Workers, Trace: o.Trace}
}

// Fit trains SRDA on dense data: x is m×n with one sample per row and
// labels[i] ∈ [0, numClasses).  The returned model stores the embedded
// class centroids, so it doubles as a standalone nearest-centroid
// classifier (Model.PredictDense / PredictVec).
func Fit(x *Dense, labels []int, numClasses int, opt Options) (*Model, error) {
	var (
		model *Model
		err   error
	)
	if opt.Whiten {
		model, err = core.FitDenseWhitened(x, labels, numClasses, opt.toCore())
	} else {
		model, err = core.FitDense(x, labels, numClasses, opt.toCore())
	}
	if err != nil {
		return nil, err
	}
	// The primal path already carries stats-based centroids (the exact
	// embedding of each class mean, shared bitwise with the streaming
	// trainer); other solvers — and whitened fits, which rescale W after
	// the fact — compute mean-of-embedding centroids from a full pass.
	if model.Centroids == nil {
		if err := model.SetCentroids(model.TransformDense(x), labels); err != nil {
			return nil, err
		}
	}
	return model, nil
}

// FitCSR trains SRDA on sparse data via LSQR with the paper's
// intercept-absorption trick; the data is never centered or densified, so
// cost is O(LSQRIter · c · nnz).  Like Fit, the returned model carries
// embedded class centroids for standalone prediction.
func FitCSR(x *CSR, labels []int, numClasses int, opt Options) (*Model, error) {
	var (
		model *Model
		err   error
	)
	if opt.Whiten {
		model, err = core.FitSparseWhitened(x, labels, numClasses, opt.toCore())
	} else {
		model, err = core.FitSparse(x, labels, numClasses, opt.toCore())
	}
	if err != nil {
		return nil, err
	}
	if err := model.SetCentroids(model.TransformSparse(x), labels); err != nil {
		return nil, err
	}
	return model, nil
}

// Operator is a matrix-free linear map; implement it to train SRDA on
// data that lives out of core or in a custom layout.
type Operator = solver.Operator

// FitOperator trains SRDA through an arbitrary operator using LSQR.
// Whitening is not applied (the harness cannot materialize the training
// embedding for an arbitrary operator); call Model.WhitenWithin with an
// embedding you computed if you need it.
func FitOperator(op Operator, labels []int, numClasses int, opt Options) (*Model, error) {
	return core.FitOperator(op, labels, numClasses, opt.toCore())
}

// LoadModel reads a model previously written with Model.Save.
func LoadModel(r io.Reader) (*Model, error) { return core.Load(r) }

// SaveModelFile persists a model to path atomically: the bytes go to a
// temporary file in the same directory, are synced, and renamed into
// place, so a crash mid-save never leaves a truncated model behind — a
// concurrent reader (srdaserve's hot-reload watcher in particular) sees
// either the old file or the complete new one.
func SaveModelFile(m *Model, path string) error { return m.SaveFile(path) }

// LoadModelFile reads a model previously written with SaveModelFile (or
// any Model.Save output on disk).
func LoadModelFile(path string) (*Model, error) { return core.LoadFile(path) }

// Responses exposes the paper's responses-generation step (eq. 15–16):
// the c−1 orthonormal, zero-sum target vectors that SRDA regresses on.
// Returned as an m×(c−1) matrix aligned with labels.
func Responses(labels []int, numClasses int) (*Dense, error) {
	rt, err := core.GenerateResponses(labels, numClasses)
	if err != nil {
		return nil, err
	}
	return rt.Materialize(labels), nil
}
